//! The resident serving engine: an owned, long-lived deployment that
//! answers a *stream* of queries and updates instead of one-shot calls.
//!
//! Every algorithm in [`crate::algorithms`] borrows a
//! [`parbox_net::Cluster`] and spawns a fresh scoped thread per site per
//! query. [`Engine`] instead **owns** its deployment: each site is a
//! persistent worker thread ([`parbox_net::SitePool`]) holding shared
//! handles to its fragments, spawned once and reused for millions of
//! requests. On top of the resident substrate it layers:
//!
//! * an **admission queue** — submitted queries coalesce into one
//!   [`parbox_query::QueryBatch`] per round (under a configurable
//!   batching window / batch-size bound), so the data plane keeps the
//!   batch engine's one-visit-per-site discipline under online traffic;
//! * a two-level **triplet cache** keyed by `(FragmentId,`
//!   [`QueryFingerprint`]`)` — each site worker memoizes the triplets it
//!   computed (skipping `bottomUp` on a repeat), and the coordinator
//!   memoizes the triplets it received per *member* fingerprint, so a
//!   repeated query is re-solved locally with **zero data-plane
//!   messages**;
//! * **update routing** — [`Engine::apply`] reuses the Section 5
//!   maintenance logic ([`crate::views::apply_update_to_forest`]) and
//!   invalidates only the touched fragment's cache entries, at both
//!   levels, keeping every cached triplet consistent with the document.
//!
//! Batch evaluation merges the round's distinct member queries into one
//! program; per-member triplets are recovered from the merged triplet via
//! the structural embedding ([`CompiledQuery::embedding_into`]) and cached
//! under each member's own fingerprint — so a query repeated *across
//! different batches* still hits.

use crate::algorithms::batch_query_wire_size;
use crate::algorithms::partial_solve;
use crate::eval::{bottom_up, IncrementalBottomUp};
use crate::plan::{estimated_envelope_bytes, estimated_triplet_bytes, SECONDS_PER_WORK_UNIT};
use crate::views::{apply_update_tracked, Update, UpdateEffect, ViewError};
use parbox_bool::{site_envelope_dag_wire_size, EquationSystem, Formula, Triplet, Var};
use parbox_frag::{Forest, ForestStats, FragError, Placement, SiteId, SourceTree};
use parbox_net::engine::{
    DeltaKernel, DeltaState, EvalReply, FragmentEval, PatchFn, RepairOutcome, RepairedEval,
    SiteCacheStats, SitePool,
};
use parbox_net::{BatchRound, MessageKind, NetworkModel, RepairEfficacy, RunReport};
use parbox_net::{CostEstimate, FaultPlan, FaultSummary, PlanSummary, SupervisorConfig};
use parbox_query::{compile, merge_programs, CompiledQuery, Query, QueryFingerprint, SubId};
use parbox_xml::{FragmentId, NodeId, Tree};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wire size of an update notification (coordinator → owning site):
/// opcode + fragment id + node id + a small payload descriptor.
const UPDATE_CONTROL_BYTES: usize = 16;

/// Configuration of a resident [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Network cost model for the report accounting.
    pub model: NetworkModel,
    /// Admission flushes a round once this many queries are pending…
    pub max_batch: usize,
    /// …or once the oldest pending submission has waited this long
    /// (checked by [`Engine::poll`]).
    pub batch_window: Duration,
    /// Per-site triplet cache capacity, in entries (FIFO eviction;
    /// 0 disables site-side caching).
    pub site_cache_capacity: usize,
    /// Coordinator-side solve cache capacity, in distinct query
    /// fingerprints (FIFO eviction; 0 disables coordinator caching).
    pub solve_cache_fingerprints: usize,
    /// Consult the cost planner each admission round: the engine keeps
    /// live [`ForestStats`] and an EWMA of the fragment-tree depth at
    /// which recent answers resolved, and picks between the eager
    /// one-visit batch round and depth-gated lazy wavefronts
    /// accordingly. When false, every round runs the eager batch
    /// protocol.
    pub plan_rounds: bool,
    /// Deterministic fault injection threaded into the site workers.
    /// The default plan is inert: zero faults and zero overhead on the
    /// worker hot path.
    pub fault_plan: FaultPlan,
    /// Supervision policy (deadline, retries, backoff) for data-plane
    /// rounds. `None` derives one from the network model via
    /// [`SupervisorConfig::from_model`].
    pub supervisor: Option<SupervisorConfig>,
    /// Maintain cached triplets *in place* under pure data updates:
    /// site workers keep a per-node memo behind each cached triplet and
    /// repair only the root-to-change path (O(depth) per entry), while
    /// the coordinator re-projects the shipped triplet deltas instead
    /// of invalidating. When false, every update falls back to
    /// invalidate-and-recompute.
    pub delta_maintenance: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            model: NetworkModel::lan(),
            max_batch: 32,
            batch_window: Duration::from_millis(1),
            site_cache_capacity: 4096,
            solve_cache_fingerprints: 512,
            plan_rounds: true,
            fault_plan: FaultPlan::none(),
            supervisor: None,
            delta_maintenance: true,
        }
    }
}

/// Whether an answer is exact or a degraded partial answer.
///
/// Under fault injection, sites can stay down past every supervised
/// retry. The engine then answers from what it has: if the partial
/// triplet coverage already *determines* the answer (it holds under any
/// content of the missing fragments — `partial_solve` leaves their
/// variables free), the answer is certain and reported `Complete`. Only
/// when the missing fragments could change the answer does the engine
/// fall back to a pessimistic evaluation and mark the answer
/// [`Completeness::Partial`], naming the sites whose fragments were
/// unavailable. A `Complete` answer is never wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completeness {
    /// The answer is exact — full coverage, or certain despite gaps.
    Complete,
    /// Degraded: missing fragments were assumed empty; the answer may
    /// differ from the true one.
    Partial {
        /// Sites whose fragments were unavailable, ascending, deduped.
        missing_sites: Vec<SiteId>,
    },
}

impl Completeness {
    /// True for [`Completeness::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, Completeness::Complete)
    }
}

/// Handle identifying one submitted query within its engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(pub u64);

/// Handle identifying one standing query ([`Engine::subscribe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub u64);

/// An answer flip pushed to a standing query: delivered with the
/// [`UpdateOutcome`] of the update that caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Notification {
    /// Which subscription flipped.
    pub subscription: SubscriptionId,
    /// The new answer.
    pub answer: bool,
}

/// One standing query: its compiled program and the last answer pushed
/// to the subscriber. The subscription pins its solve-cache entry
/// against FIFO eviction, so refreshing after an update is a local
/// re-solve (or free, when delta repair certified the entry unchanged).
#[derive(Debug)]
struct Subscription {
    query: CompiledQuery,
    fp: QueryFingerprint,
    last: bool,
}

/// Result of one admission round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// `(ticket, answer)` for every query of the round, in submission
    /// order.
    pub answers: Vec<(Ticket, bool)>,
    /// Cost accounting of the whole round.
    pub report: RunReport,
    /// Distinct query programs in the round (duplicates coalesce).
    pub members: usize,
    /// Members answered entirely from the coordinator's triplet cache —
    /// zero data-plane messages, no site left idle-less.
    pub members_from_cache: usize,
    /// Fragments whose triplets were requested from sites this round.
    pub fragments_evaluated: usize,
    /// Requested triplets the sites served from their own caches
    /// (shipping the cached triplet instead of re-running `bottomUp`).
    pub site_cache_hits: usize,
    /// Tickets whose answers are degraded partial answers, with the
    /// sites that stayed down. Empty in a healthy round — and for every
    /// ticket *not* listed here, the answer is exact.
    pub partial: Vec<(Ticket, Vec<SiteId>)>,
}

impl RoundOutcome {
    /// Completeness of one ticket's answer in this round.
    pub fn completeness(&self, ticket: Ticket) -> Completeness {
        match self.partial.iter().find(|(t, _)| *t == ticket) {
            Some((_, missing)) => Completeness::Partial {
                missing_sites: missing.clone(),
            },
            None => Completeness::Complete,
        }
    }
}

/// Result of [`Engine::query`], the single-query convenience path.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The Boolean answer.
    pub answer: bool,
    /// Cost accounting of the (single-member) round.
    pub report: RunReport,
    /// True when the answer came entirely from the coordinator cache.
    pub from_cache: bool,
    /// Whether the answer is exact or a degraded partial answer.
    pub completeness: Completeness,
}

/// Result of [`Engine::apply`].
#[derive(Debug)]
pub struct UpdateOutcome {
    /// Queries that were still pending when the update arrived are
    /// answered first, against the pre-update document.
    pub flushed: Option<RoundOutcome>,
    /// Which fragments the update touched / added / removed.
    pub effect: UpdateEffect,
    /// Cost accounting of the maintenance step (control traffic plus any
    /// shipped subtree on a cross-site split).
    pub report: RunReport,
    /// Cache entries invalidated by the update and left for
    /// recomputation (site + coordinator levels on the delta path;
    /// coordinator entries on the legacy path).
    pub invalidated: usize,
    /// Cache entries repaired in place — or certified unchanged — by
    /// delta maintenance, across both cache levels. 0 on the
    /// invalidation path.
    pub repaired: usize,
    /// Standing queries whose answers flipped under this update, in
    /// subscription order.
    pub notifications: Vec<Notification>,
}

/// Running counters of an engine's lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Admission rounds flushed.
    pub rounds: u64,
    /// Queries answered.
    pub queries: u64,
    /// Distinct members evaluated through the data plane.
    pub members_evaluated: u64,
    /// Members answered from the coordinator cache.
    pub members_from_cache: u64,
    /// Per-fragment evaluations requested from sites.
    pub fragments_evaluated: u64,
    /// Requested triplets served from site-side caches.
    pub site_cache_hits: u64,
    /// Updates applied.
    pub updates: u64,
    /// Supervised request timeouts (deadline expiries) observed.
    pub timeouts: u64,
    /// Supervised retry attempts beyond each round's first.
    pub retries: u64,
    /// Site actors restarted (after a panic, wedge, or dead inbox).
    pub restarts: u64,
    /// Answers that went out degraded ([`Completeness::Partial`]).
    pub partial_answers: u64,
    /// Cache entries repaired in place by delta maintenance (both
    /// levels), lifetime total.
    pub entries_repaired: u64,
    /// Cache entries invalidated by updates, lifetime total.
    pub entries_invalidated: u64,
    /// Tree nodes re-interned across all delta repairs — the O(depth)
    /// update cost actually paid.
    pub repair_nodes_recomputed: u64,
    /// Wire bytes of shipped triplet deltas, lifetime total.
    pub repair_delta_bytes: u64,
    /// Answer-flip notifications pushed to standing queries.
    pub notifications: u64,
}

/// Result of [`Engine::shutdown`]: what the deterministic teardown
/// found on its way out.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Rounds flushed or parked at shutdown whose answers had not been
    /// taken yet (the final admission flush plus any parked rounds).
    pub drained: Vec<RoundOutcome>,
    /// Site workers that had panicked (their joins returned an error).
    pub panicked_workers: usize,
}

/// Coordinator-side cache of one member program's solve inputs.
#[derive(Debug)]
struct SolveEntry {
    /// Root sub-query id within the member's own program.
    root: SubId,
    /// Per-fragment triplets, each as wide as the member program.
    triplets: HashMap<FragmentId, Arc<Triplet>>,
    /// Provenance of each fragment's triplet: the merged program
    /// (site-cache key) it was projected out of and the projection used
    /// — what delta repair re-projects a repaired site triplet with.
    sources: HashMap<FragmentId, (QueryFingerprint, Arc<Vec<SubId>>)>,
    /// Memoized answer; dropped whenever any triplet is invalidated.
    answer: Option<bool>,
}

/// A long-lived deployment: persistent site workers, triplet caches, an
/// admission queue, and update routing. See the module docs for the
/// architecture; see `tests/serve.rs` for the equivalence properties it
/// upholds.
#[derive(Debug)]
pub struct Engine {
    forest: Forest,
    placement: Placement,
    source_tree: SourceTree,
    coordinator: SiteId,
    config: EngineConfig,
    /// Resolved supervision policy (from `config.supervisor`, or
    /// derived from the network model).
    supervisor: SupervisorConfig,
    pool: SitePool,
    /// Live aggregates of the deployed forest, maintained incrementally
    /// through every update — what per-round planning reads.
    forest_stats: ForestStats,
    /// EWMA of the fragment-tree depth at which recent rounds' answers
    /// resolved. Initialized pessimistically to the full depth, so a
    /// fresh engine runs eager batch rounds until observations say
    /// shallower wavefronts suffice.
    depth_ewma: f64,
    solve_cache: HashMap<QueryFingerprint, SolveEntry>,
    /// FIFO eviction order of cached fingerprints.
    solve_order: VecDeque<QueryFingerprint>,
    pending: Vec<(Ticket, CompiledQuery)>,
    /// Rounds flushed implicitly by [`Engine::query`], kept so their
    /// answers stay retrievable ([`Engine::take_parked_rounds`]).
    parked: Vec<RoundOutcome>,
    /// Standing queries, refreshed after every update; ordered so
    /// notifications come out deterministically.
    subscriptions: BTreeMap<u64, Subscription>,
    opened_at: Option<Instant>,
    next_ticket: u64,
    next_subscription: u64,
    stats: EngineStats,
}

/// The evaluation kernel the site workers run: procedure `bottomUp`.
fn kernel(tree: &Tree, q: &CompiledQuery) -> FragmentEval {
    let run = bottom_up(tree, q);
    FragmentEval {
        triplet: run.triplet,
        work_units: run.work_units,
    }
}

/// The delta build kernel: `bottomUp` evaluated through
/// [`IncrementalBottomUp`], which keeps a per-node formula memo behind
/// the triplet so later updates repair it along the root-to-change path
/// only. Produces id-identical triplets and identical work accounting
/// to [`kernel`].
fn delta_build(tree: &Tree, q: &CompiledQuery) -> (FragmentEval, DeltaState) {
    let (inc, work_units) = IncrementalBottomUp::build(tree, q);
    let eval = FragmentEval {
        triplet: inc.triplet().clone(),
        work_units,
    };
    (eval, Box::new(inc))
}

/// The delta repair kernel: re-interns the updated node's subtree
/// frontier and the path up to the fragment root — O(depth), not
/// O(|fragment|).
fn delta_repair(state: &mut DeltaState, tree: &Tree, anchor: NodeId) -> RepairedEval {
    let inc = state
        .downcast_mut::<IncrementalBottomUp>()
        .expect("state was built by delta_build");
    let run = inc.repair(tree, anchor);
    RepairedEval {
        triplet: run.triplet,
        nodes_recomputed: run.nodes_recomputed,
        work_units: run.work_units,
    }
}

/// Kernel pair handed to the site pool when delta maintenance is on.
const DELTA_KERNEL: DeltaKernel = DeltaKernel {
    build: delta_build,
    repair: delta_repair,
};

/// Builds the site-side patch replaying a pure data update on the
/// site's *own* copy of the fragment tree — the [`Update`] expressed as
/// a shippable mutation. Site and coordinator trees evolve through the
/// identical mutation sequence from the identical seed state, so they
/// stay equal without ever sharing (and therefore without the `O(|F|)`
/// copy-on-write clone a shared handle would force on every update).
/// Restructuring updates return `None` and take the legacy path.
fn data_patch(update: &Update) -> Option<PatchFn> {
    match update {
        Update::InsNode {
            parent,
            label,
            text,
            ..
        } => {
            let (parent, label, text) = (*parent, label.clone(), text.clone());
            Some(Box::new(move |t: &mut Tree| {
                match text {
                    Some(tx) => t.add_text_child(parent, &label, &tx),
                    None => t.add_child(parent, &label),
                };
            }))
        }
        Update::DelNode { node, .. } => {
            let node = *node;
            Some(Box::new(move |t: &mut Tree| {
                // The coordinator already validated and applied this
                // removal; replaying it on the identical copy cannot
                // fail.
                let _ = t.remove_subtree(node);
            }))
        }
        Update::SplitFragments { .. } | Update::MergeFragments { .. } => None,
    }
}

impl Engine {
    /// Deploys the fragmented document: spawns one persistent worker per
    /// site, each owning handles to its fragments. Errs if the placement
    /// does not cover every fragment.
    pub fn new(
        forest: Forest,
        placement: Placement,
        config: EngineConfig,
    ) -> Result<Engine, FragError> {
        placement.check(&forest)?;
        let source_tree = SourceTree::new(&forest, &placement);
        let coordinator = source_tree.site_of(forest.root_fragment());
        let sites = source_tree
            .sites()
            .into_iter()
            .map(|s| {
                let frags = source_tree
                    .fragments_at(s)
                    .into_iter()
                    .map(|f| (f, forest.tree_handle(f)))
                    .collect();
                (s, frags)
            })
            .collect();
        let pool = SitePool::spawn_full(
            sites,
            config.site_cache_capacity,
            kernel,
            config.fault_plan.clone(),
            config.delta_maintenance.then_some(DELTA_KERNEL),
        );
        let supervisor = config
            .supervisor
            .clone()
            .unwrap_or_else(|| SupervisorConfig::from_model(&config.model));
        let forest_stats = ForestStats::compute(&forest, &placement);
        let depth_ewma = forest_stats.max_depth() as f64;
        Ok(Engine {
            forest,
            placement,
            source_tree,
            coordinator,
            config,
            supervisor,
            pool,
            forest_stats,
            depth_ewma,
            solve_cache: HashMap::new(),
            solve_order: VecDeque::new(),
            pending: Vec::new(),
            parked: Vec::new(),
            subscriptions: BTreeMap::new(),
            opened_at: None,
            next_ticket: 0,
            next_subscription: 0,
            stats: EngineStats::default(),
        })
    }

    /// The authoritative current document (the deployed fragment trees
    /// are shared handles into this forest).
    pub fn forest(&self) -> &Forest {
        &self.forest
    }

    /// The current placement `h : F → S`.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The coordinating site (home of the root fragment).
    pub fn coordinator(&self) -> SiteId {
        self.coordinator
    }

    /// The engine's network cost model.
    pub fn model(&self) -> &NetworkModel {
        &self.config.model
    }

    /// Lifetime counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Live forest statistics, incrementally maintained through every
    /// update — the planner's input.
    pub fn forest_stats(&self) -> &ForestStats {
        &self.forest_stats
    }

    /// EWMA of the fragment-tree depth at which recent rounds' answers
    /// resolved — the statistic gating lazy wavefront rounds.
    pub fn resolve_depth_ewma(&self) -> f64 {
        self.depth_ewma
    }

    /// Per-site triplet-cache counters (from the resident workers).
    pub fn site_cache_stats(&self) -> BTreeMap<u32, SiteCacheStats> {
        self.pool.cache_stats()
    }

    /// Queries waiting in the admission queue.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Drops every coordinator-side cached triplet (memory-pressure
    /// valve). Site-side caches are unaffected: the next round re-ships
    /// cached triplets instead of recomputing them.
    pub fn clear_solve_cache(&mut self) {
        self.solve_cache.clear();
        self.solve_order.clear();
    }

    /// Enqueues a query into the admission window; the answer arrives
    /// with the round that flushes it ([`Engine::poll`] /
    /// [`Engine::flush`]), labelled by the returned ticket.
    pub fn submit(&mut self, query: &Query) -> Ticket {
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        self.pending.push((ticket, compile(query)));
        self.opened_at.get_or_insert_with(Instant::now);
        ticket
    }

    /// Flushes the admission queue if the round is due — the batch-size
    /// bound is reached or the oldest submission has outwaited the
    /// batching window. Call this from the serving loop after submits.
    pub fn poll(&mut self) -> Option<RoundOutcome> {
        let due = self.pending.len() >= self.config.max_batch
            || self
                .opened_at
                .is_some_and(|t| t.elapsed() >= self.config.batch_window);
        if due {
            self.flush()
        } else {
            None
        }
    }

    /// Evaluates every pending query as one admission round (regardless
    /// of window/batch bounds). Returns `None` when nothing is pending.
    pub fn flush(&mut self) -> Option<RoundOutcome> {
        let pending = std::mem::take(&mut self.pending);
        self.opened_at = None;
        if pending.is_empty() {
            return None;
        }
        Some(self.run_round(pending))
    }

    /// Single-query convenience: answers `query` in a round of its own.
    /// Anything still pending is flushed first and its [`RoundOutcome`]
    /// *parked* — no answer is ever lost; drain parked rounds with
    /// [`Engine::take_parked_rounds`].
    pub fn query(&mut self, query: &Query) -> QueryOutcome {
        if let Some(prior) = self.flush() {
            self.parked.push(prior);
        }
        self.submit(query);
        let outcome = self.flush().expect("one query is pending");
        let (ticket, answer) = outcome.answers[0];
        QueryOutcome {
            answer,
            from_cache: outcome.members_from_cache == 1,
            completeness: outcome.completeness(ticket),
            report: outcome.report,
        }
    }

    /// Deterministic teardown: flushes the admission queue, drains every
    /// parked round (no answer is ever lost), and joins all site actor
    /// threads — reporting how many had panicked rather than
    /// double-panicking on them. The engine stays usable for cached
    /// answers afterwards, but its data plane is gone; drop it.
    pub fn shutdown(&mut self) -> ShutdownReport {
        if let Some(last) = self.flush() {
            self.parked.push(last);
        }
        ShutdownReport {
            drained: std::mem::take(&mut self.parked),
            panicked_workers: self.pool.shutdown(),
        }
    }

    /// Rounds that [`Engine::query`] flushed on behalf of earlier
    /// [`Engine::submit`] calls, in flush order. Empty unless `submit`
    /// and `query` were interleaved.
    pub fn take_parked_rounds(&mut self) -> Vec<RoundOutcome> {
        std::mem::take(&mut self.parked)
    }

    /// Registers `query` as a *standing query*: it is answered now (the
    /// baseline), its solve-cache entry is pinned against eviction, and
    /// every subsequent [`Engine::apply`] re-checks it — pushing a
    /// [`Notification`] with the [`UpdateOutcome`] whenever the answer
    /// flips. With delta maintenance on, the re-check is free when the
    /// update left the entry's triplets unchanged, and a local re-solve
    /// of the repaired triplets otherwise — no data-plane round either
    /// way. Anything pending is flushed (and parked) first, as for
    /// [`Engine::query`].
    pub fn subscribe(&mut self, query: &Query) -> SubscriptionId {
        if let Some(prior) = self.flush() {
            self.parked.push(prior);
        }
        let compiled = compile(query);
        let fp = compiled.fingerprint();
        let last = self.answer_now(compiled.clone());
        let id = SubscriptionId(self.next_subscription);
        self.next_subscription += 1;
        self.subscriptions.insert(
            id.0,
            Subscription {
                query: compiled,
                fp,
                last,
            },
        );
        id
    }

    /// Cancels a standing query. Returns false when the id is unknown
    /// (or already cancelled).
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        self.subscriptions.remove(&id.0).is_some()
    }

    /// The last answer pushed (or established at subscription time) for
    /// a standing query; `None` for an unknown id.
    pub fn subscription_answer(&self, id: SubscriptionId) -> Option<bool> {
        self.subscriptions.get(&id.0).map(|s| s.last)
    }

    /// Number of active standing queries.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.len()
    }

    /// Answers one already-compiled program in a round of its own,
    /// minting a throwaway ticket. Serves from the solve cache when the
    /// entry has coverage (the standing-query refresh path).
    fn answer_now(&mut self, compiled: CompiledQuery) -> bool {
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        let out = self.run_round(vec![(ticket, compiled)]);
        out.answers[0].1
    }

    /// Re-checks every standing query after an update, pushing an
    /// answer-flip notification per subscription whose answer changed.
    /// Cheap by construction: a memoized answer (kept alive by an
    /// unchanged delta repair) costs nothing; a voided one re-solves
    /// locally from the repaired triplets; only an invalidated entry
    /// goes back to the data plane — for the one touched fragment.
    fn refresh_subscriptions(&mut self) -> Vec<Notification> {
        if self.subscriptions.is_empty() {
            return Vec::new();
        }
        let ids: Vec<u64> = self.subscriptions.keys().copied().collect();
        let mut out = Vec::new();
        for id in ids {
            let (fp, compiled, last) = {
                let s = &self.subscriptions[&id];
                (s.fp, s.query.clone(), s.last)
            };
            let answer = match self.solve_cache.get(&fp).and_then(|e| e.answer) {
                Some(a) => a,
                None => self.answer_now(compiled),
            };
            if answer != last {
                self.subscriptions.get_mut(&id).expect("iterated ids").last = answer;
                out.push(Notification {
                    subscription: SubscriptionId(id),
                    answer,
                });
            }
        }
        out
    }

    /// Chooses this round's data-plane strategy — the eager one-visit
    /// batch round versus depth-gated lazy wavefronts — by estimating
    /// both from the live [`ForestStats`] and the resolution-depth EWMA,
    /// in the same units the round's [`RunReport`] will measure. Returns
    /// `(lazy?, summary)`; with a single active member the eager round
    /// degenerates to plain ParBoX and is labelled so.
    fn plan_round_strategy(
        &self,
        need: &[FragmentId],
        active_members: usize,
        merged_len: usize,
        request_bytes: usize,
    ) -> (bool, PlanSummary) {
        let model = &self.config.model;
        let coord = self.coordinator;
        let m = merged_len.max(1);
        let card = self.forest_stats.card().max(1);
        let solve_work = (active_members * m * card) as u64;

        #[derive(Default)]
        struct SiteAgg {
            frags: usize,
            nodes: usize,
            env_bytes: usize,
        }
        let mut eager_sites: BTreeMap<u32, SiteAgg> = BTreeMap::new();
        let mut eval_work = 0u64;
        for &f in need {
            let s = self.forest_stats.fragment(f);
            let agg = eager_sites.entry(s.site.0).or_default();
            agg.frags += 1;
            agg.nodes += s.nodes;
            agg.env_bytes += estimated_triplet_bytes(m, s.fanout);
            eval_work += (s.nodes * m) as u64;
        }
        let remote_sites = eager_sites.keys().filter(|&&s| s != coord.0).count();
        let remote_env: usize = eager_sites
            .iter()
            .filter(|(&s, _)| s != coord.0)
            .map(|(_, a)| estimated_envelope_bytes(a.env_bytes))
            .sum();
        let max_site_nodes = eager_sites.values().map(|a| a.nodes).max().unwrap_or(0);
        let eager = CostEstimate {
            visits: eager_sites.len(),
            messages: 2 * remote_sites,
            traffic_bytes: request_bytes * remote_sites + remote_env,
            rounds: if remote_sites > 0 { 2 } else { 0 },
            work_units: eval_work + solve_work,
            modeled_s: if remote_sites > 0 {
                model.transfer_time(request_bytes)
            } else {
                0.0
            } + (max_site_nodes * m) as f64 * SECONDS_PER_WORK_UNIT
                + model.estimate_round(remote_sites, remote_env)
                + solve_work as f64 * SECONDS_PER_WORK_UNIT,
        };

        // Lazy wavefronts, optimistically stopping at the observed
        // resolution depth (always including at least the shallowest
        // needed wave — the round must ship *something*).
        let hint = (self.depth_ewma.round() as usize).min(self.forest_stats.max_depth());
        let mut waves: BTreeMap<usize, BTreeMap<u32, SiteAgg>> = BTreeMap::new();
        for &f in need {
            let s = self.forest_stats.fragment(f);
            let agg = waves
                .entry(s.depth)
                .or_default()
                .entry(s.site.0)
                .or_default();
            agg.frags += 1;
            agg.nodes += s.nodes;
            agg.env_bytes += estimated_triplet_bytes(m, s.fanout);
        }
        let mut lazy_est = CostEstimate::default();
        let mut gathered = 0usize;
        let mut first = true;
        for (&depth, sites) in &waves {
            if depth > hint && !first {
                break;
            }
            first = false;
            let wave_remote = sites.keys().filter(|&&s| s != coord.0).count();
            let wave_env: usize = sites
                .iter()
                .filter(|(&s, _)| s != coord.0)
                .map(|(_, a)| estimated_envelope_bytes(a.env_bytes))
                .sum();
            let wave_nodes_max = sites.values().map(|a| a.nodes).max().unwrap_or(0);
            gathered += sites.values().map(|a| a.frags).sum::<usize>();
            let wave_solve = (active_members * m * gathered) as u64;
            lazy_est.visits += sites.len();
            lazy_est.messages += 2 * wave_remote;
            lazy_est.traffic_bytes += request_bytes * wave_remote + wave_env;
            lazy_est.rounds += if wave_remote > 0 { 2 } else { 0 };
            lazy_est.work_units +=
                sites.values().map(|a| (a.nodes * m) as u64).sum::<u64>() + wave_solve;
            lazy_est.modeled_s += if wave_remote > 0 {
                model.transfer_time(request_bytes)
            } else {
                0.0
            } + (wave_nodes_max * m) as f64 * SECONDS_PER_WORK_UNIT
                + model.estimate_round(wave_remote, wave_env)
                + wave_solve as f64 * SECONDS_PER_WORK_UNIT;
        }

        let lazy_wins = lazy_est.modeled_s < eager.modeled_s;
        let strategy = if lazy_wins {
            "LazyParBoX"
        } else if active_members == 1 {
            "ParBoX"
        } else {
            "BatchParBoX"
        };
        (
            lazy_wins,
            PlanSummary {
                strategy: strategy.to_string(),
                estimate: if lazy_wins { lazy_est } else { eager },
                candidates: 2,
            },
        )
    }

    /// Ensures a coordinator cache entry exists for `fp`, registering it
    /// in the FIFO eviction order on first insertion.
    fn ensure_solve_entry(&mut self, fp: QueryFingerprint, root: SubId) {
        if !self.solve_cache.contains_key(&fp) {
            self.solve_order.push_back(fp);
            self.solve_cache.insert(
                fp,
                SolveEntry {
                    root,
                    triplets: HashMap::new(),
                    sources: HashMap::new(),
                    answer: None,
                },
            );
        }
    }

    /// The shallowest fragment-tree depth whose wavefronts' triplets
    /// already determine this member's answer — measured post hoc from a
    /// solved cache entry, and fed into the EWMA that gates future lazy
    /// rounds. Resolvability is monotone in the gathered set (adding
    /// triplets can only close more variables), so the minimal depth is
    /// found by binary search: `O(log max_depth)` partial solves over
    /// shared handles, never cloning a triplet. This is control-plane
    /// bookkeeping and deliberately unaccounted in the round's report.
    fn observed_resolution_depth(&self, entry: &SolveEntry) -> usize {
        let max_depth = self.forest_stats.max_depth();
        let mut by_depth: BTreeMap<usize, Vec<(FragmentId, Arc<Triplet>)>> = BTreeMap::new();
        for (&f, t) in &entry.triplets {
            if let Some(s) = self.forest_stats.try_fragment(f) {
                by_depth
                    .entry(s.depth)
                    .or_default()
                    .push((f, Arc::clone(t)));
            }
        }
        let resolves_at = |d: usize| {
            let gathered: HashMap<FragmentId, &Triplet> = by_depth
                .range(..=d)
                .flat_map(|(_, wave)| wave.iter().map(|(f, t)| (*f, &**t)))
                .collect();
            partial_solve(&self.source_tree, &gathered, entry.root as usize).is_some()
        };
        // Invariant: the answer resolves somewhere in 0..=max_depth
        // (solved entries cover enough triplets); find the smallest.
        let (mut lo, mut hi) = (0usize, max_depth);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if resolves_at(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    fn run_round(&mut self, pending: Vec<(Ticket, CompiledQuery)>) -> RoundOutcome {
        let wall = Instant::now();
        let live: Vec<FragmentId> = self.forest.fragment_ids().collect();
        let postorder = self.source_tree.postorder().to_vec();
        let root_frag = self.forest.root_fragment();

        // Coalesce duplicate programs: one member per distinct fingerprint.
        struct Member {
            fp: QueryFingerprint,
            /// Index into `pending` of the first submission of this program.
            idx: usize,
            /// All `pending` indices answered by this member.
            submissions: Vec<usize>,
        }
        let mut members: Vec<Member> = Vec::new();
        let mut by_fp: HashMap<QueryFingerprint, usize> = HashMap::new();
        for (i, (_, compiled)) in pending.iter().enumerate() {
            let fp = compiled.fingerprint();
            let mi = *by_fp.entry(fp).or_insert_with(|| {
                members.push(Member {
                    fp,
                    idx: i,
                    submissions: Vec::new(),
                });
                members.len() - 1
            });
            members[mi].submissions.push(i);
        }

        let mut round = BatchRound::new(self.coordinator);
        let mut answers: Vec<Option<bool>> = vec![None; pending.len()];
        let mut partial: Vec<(Ticket, Vec<SiteId>)> = Vec::new();
        let mut fault_summary = FaultSummary::default();
        let mut solve_total = 0.0f64;
        let mut members_from_cache = 0usize;
        let mut site_cache_hits = 0usize;
        let mut fragments_evaluated = 0usize;

        // Phase 1 — members the coordinator can answer without any
        // data-plane message: a memoized (and never-invalidated-since)
        // answer, or full cached triplet coverage to re-solve from.
        let mut active: Vec<usize> = Vec::new();
        for (mi, m) in members.iter().enumerate() {
            let cached = self.solve_cache.get(&m.fp).is_some_and(|e| {
                e.answer.is_some() || live.iter().all(|f| e.triplets.contains_key(f))
            });
            if !cached {
                active.push(mi);
                continue;
            }
            members_from_cache += 1;
            let compiled = &pending[m.idx].1;
            let entry = self.solve_cache.get_mut(&m.fp).expect("checked above");
            let answer = match entry.answer {
                Some(a) => a,
                None => {
                    let start = Instant::now();
                    let a = solve_entry(entry, &postorder, root_frag);
                    solve_total += start.elapsed().as_secs_f64();
                    round
                        .report_mut()
                        .record_compute(self.coordinator, start.elapsed());
                    round
                        .report_mut()
                        .record_work(self.coordinator, (compiled.len() * live.len()) as u64);
                    entry.answer = Some(a);
                    a
                }
            };
            for &pi in &m.submissions {
                answers[pi] = Some(answer);
            }
        }

        // Phase 2 — the rest: a data-plane round over the resident
        // workers, then per-member projection, caching and solving. The
        // round *strategy* — eager one-visit batch vs depth-gated lazy
        // wavefronts — is chosen by the per-round planner from the live
        // [`ForestStats`] and the observed resolution-depth EWMA.
        let mut broadcast = 0.0f64;
        let mut collect = 0.0f64;
        let mut max_compute = 0.0f64;
        let mut planned: Option<PlanSummary> = None;
        let mut lazy_model_time = 0.0f64;
        if !active.is_empty() {
            // Merge the members' already-compiled programs — submit()
            // compiled each query once; no re-parse/re-compile per round.
            let programs: Vec<CompiledQuery> = active
                .iter()
                .map(|&mi| pending[members[mi].idx].1.clone())
                .collect();
            let batch = merge_programs(&programs);
            let merged = Arc::new(batch.merged().clone());
            let program_fp = merged.program_fingerprint();
            let projections: Vec<Arc<Vec<SubId>>> = programs
                .iter()
                .map(|p| {
                    Arc::new(
                        p.embedding_into(&merged)
                            .expect("member embeds into merged batch program"),
                    )
                })
                .collect();

            // A fragment is evaluated iff some active member lacks its
            // cached triplet (after an update, that is just the touched
            // fragments).
            let need: Vec<FragmentId> = live
                .iter()
                .copied()
                .filter(|f| {
                    active.iter().any(|&mi| {
                        !self
                            .solve_cache
                            .get(&members[mi].fp)
                            .is_some_and(|e| e.triplets.contains_key(f))
                    })
                })
                .collect();
            fragments_evaluated = need.len();
            let request_bytes = batch_query_wire_size(&batch);

            // Consult the per-round planner: eager batch vs lazy waves.
            let lazy = if self.config.plan_rounds {
                let (lazy, summary) =
                    self.plan_round_strategy(&need, active.len(), merged.len(), request_bytes);
                planned = Some(summary);
                lazy
            } else {
                false
            };

            if !lazy {
                // ---- Eager batch round: one visit per needed site ----
                let mut per_site: BTreeMap<u32, Vec<FragmentId>> = BTreeMap::new();
                for &f in &need {
                    per_site
                        .entry(self.source_tree.site_of(f).0)
                        .or_default()
                        .push(f);
                }
                let mut any_remote = false;
                for &s in per_site.keys() {
                    round
                        .visit(SiteId(s), request_bytes)
                        .expect("one visit per site per round");
                    any_remote |= SiteId(s) != self.coordinator;
                }
                if any_remote {
                    broadcast = self.config.model.transfer_time(request_bytes);
                }

                // The site caches key by *program* fingerprint: the merged
                // program's root fingerprint is just its last member's, so
                // two batches sharing a tail member would collide and serve
                // triplets of the wrong width.
                let replies = {
                    let pool = &mut self.pool;
                    let source_tree = &self.source_tree;
                    let forest = &self.forest;
                    let mut reseed_log: Vec<(SiteId, usize)> = Vec::new();
                    let out = pool.eval_round_supervised(
                        &merged,
                        merged.program_fingerprint(),
                        per_site
                            .into_iter()
                            .map(|(s, fs)| (SiteId(s), fs))
                            .collect(),
                        &self.supervisor,
                        &mut |site| {
                            let frags: Vec<(FragmentId, Arc<Tree>)> = source_tree
                                .fragments_at(site)
                                .into_iter()
                                .map(|f| (f, forest.tree_handle(f)))
                                .collect();
                            reseed_log.push((
                                site,
                                frags
                                    .iter()
                                    .map(|(f, _)| forest.fragment(*f).byte_size())
                                    .sum(),
                            ));
                            frags
                        },
                    );
                    record_supervision(
                        round.report_mut(),
                        self.coordinator,
                        &self.config.model,
                        &out.stats,
                        &out.retry_visits,
                        &reseed_log,
                        request_bytes,
                        &mut fault_summary,
                        &mut broadcast,
                    );
                    out.replies
                };

                let mut merged_triplets: HashMap<FragmentId, Arc<Triplet>> = HashMap::new();
                let (mc, envelopes) = absorb_replies(
                    round.report_mut(),
                    replies,
                    &mut merged_triplets,
                    &mut site_cache_hits,
                );
                max_compute = mc;
                let mut remote_envelopes: Vec<usize> = Vec::new();
                for (site, bytes) in envelopes {
                    round.reply(site, bytes).expect("site was visited");
                    if site != self.coordinator {
                        remote_envelopes.push(bytes);
                    }
                }
                collect = self
                    .config
                    .model
                    .shared_link_time(remote_envelopes.iter().copied());

                // Identical merged triplets (the common case: many leaf
                // fragments resolving a member to the same constants) project
                // identically — memoize per member, keyed on the
                // `FormulaId`-stable triplet content, so the renumbering
                // substitution runs once and the cache entries share one Arc.
                let mut projection_memo: HashMap<(usize, Triplet), Arc<Triplet>> = HashMap::new();
                for (k, &mi) in active.iter().enumerate() {
                    let m = &members[mi];
                    let compiled = &pending[m.idx].1;
                    let proj = &projections[k];
                    let inv: HashMap<u32, u32> = proj
                        .iter()
                        .enumerate()
                        .map(|(i, &h)| (h, i as u32))
                        .collect();
                    self.ensure_solve_entry(m.fp, compiled.root());
                    let entry = self.solve_cache.get_mut(&m.fp).expect("just inserted");
                    for &f in &live {
                        if entry.triplets.contains_key(&f) {
                            continue;
                        }
                        // A fragment whose site stayed down past every
                        // supervised attempt has no merged triplet; leave
                        // the entry uncovered and degrade below.
                        let Some(merged_t) = merged_triplets.get(&f) else {
                            continue;
                        };
                        let t = Arc::clone(
                            projection_memo
                                .entry((k, (**merged_t).clone()))
                                .or_insert_with(|| Arc::new(project_triplet(merged_t, proj, &inv))),
                        );
                        entry.triplets.insert(f, t);
                        entry.sources.insert(f, (program_fp, Arc::clone(proj)));
                    }
                    let start = Instant::now();
                    let covered = live.iter().all(|f| entry.triplets.contains_key(f));
                    let answer = if covered {
                        let a = solve_entry(entry, &postorder, root_frag);
                        entry.answer = Some(a);
                        a
                    } else if let Some(a) =
                        partial_solve(&self.source_tree, &entry.triplets, entry.root as usize)
                    {
                        // Certain despite the gaps: the answer holds under
                        // *any* content of the missing fragments, so it is
                        // exact and safe to memoize.
                        entry.answer = Some(a);
                        a
                    } else {
                        // Degraded: solve with the missing fragments
                        // assumed empty. Never memoized — the next round
                        // re-requests exactly the missing fragments.
                        let missing = missing_sites(&self.source_tree, &live, &entry.triplets);
                        for &pi in &m.submissions {
                            partial.push((pending[pi].0, missing.clone()));
                        }
                        degraded_solve(entry, &postorder, &live, compiled.len(), root_frag)
                    };
                    solve_total += start.elapsed().as_secs_f64();
                    round
                        .report_mut()
                        .record_compute(self.coordinator, start.elapsed());
                    round
                        .report_mut()
                        .record_work(self.coordinator, (compiled.len() * live.len()) as u64);
                    for &pi in &m.submissions {
                        answers[pi] = Some(answer);
                    }
                }
            } else {
                // ---- Depth-gated lazy wavefronts --------------------
                // `partial_solve` leaves unevaluated fragments' variables
                // free, so an answer it determines holds under *any*
                // content of the skipped fragments — shipping stops as
                // soon as every member's answer is determined.
                fragments_evaluated = 0;
                let mut unanswered: Vec<usize> = Vec::new();
                let mut invs: Vec<HashMap<u32, u32>> = Vec::new();
                for (k, &mi) in active.iter().enumerate() {
                    let m = &members[mi];
                    let compiled = &pending[m.idx].1;
                    invs.push(
                        projections[k]
                            .iter()
                            .enumerate()
                            .map(|(i, &h)| (h, i as u32))
                            .collect(),
                    );
                    self.ensure_solve_entry(m.fp, compiled.root());
                    unanswered.push(k);
                }

                let mut by_depth: BTreeMap<usize, Vec<FragmentId>> = BTreeMap::new();
                for &f in &need {
                    by_depth
                        .entry(self.forest_stats.fragment(f).depth)
                        .or_default()
                        .push(f);
                }
                let mut waves = by_depth.into_iter();
                let mut merged_triplets: HashMap<FragmentId, Arc<Triplet>> = HashMap::new();
                let mut projection_memo: HashMap<(usize, Triplet), Arc<Triplet>> = HashMap::new();
                loop {
                    // Attempt resolution of every still-open member from
                    // what it has (cached + projected so far). The first
                    // pass costs zero messages: an answer determined by
                    // surviving cache entries alone ships nothing.
                    unanswered.retain(|&k| {
                        let m = &members[active[k]];
                        let compiled = &pending[m.idx].1;
                        let entry = self.solve_cache.get_mut(&m.fp).expect("ensured above");
                        for (&f, merged_t) in &merged_triplets {
                            if entry.triplets.contains_key(&f) {
                                continue;
                            }
                            let t = Arc::clone(
                                projection_memo
                                    .entry((k, (**merged_t).clone()))
                                    .or_insert_with(|| {
                                        Arc::new(project_triplet(
                                            merged_t,
                                            &projections[k],
                                            &invs[k],
                                        ))
                                    }),
                            );
                            entry.triplets.insert(f, t);
                            entry
                                .sources
                                .insert(f, (program_fp, Arc::clone(&projections[k])));
                        }
                        let start = Instant::now();
                        let maybe =
                            partial_solve(&self.source_tree, &entry.triplets, entry.root as usize);
                        let took = start.elapsed();
                        solve_total += took.as_secs_f64();
                        round.report_mut().record_compute(self.coordinator, took);
                        round.report_mut().record_work(
                            self.coordinator,
                            (compiled.len() * entry.triplets.len().max(1)) as u64,
                        );
                        match maybe {
                            Some(a) => {
                                entry.answer = Some(a);
                                for &pi in &m.submissions {
                                    answers[pi] = Some(a);
                                }
                                false
                            }
                            None => true,
                        }
                    });
                    if unanswered.is_empty() {
                        break;
                    }
                    let Some((_, frags)) = waves.next() else {
                        // Waves exhausted with members still open: some
                        // site stayed down past every supervised attempt
                        // and its fragments never arrived. Degrade the
                        // open members to pessimistic partial answers
                        // (the certain cases were already closed by
                        // `partial_solve` in the retain pass above).
                        for &k in &unanswered {
                            let m = &members[active[k]];
                            let compiled = &pending[m.idx].1;
                            let entry = self.solve_cache.get_mut(&m.fp).expect("ensured above");
                            let answer =
                                degraded_solve(entry, &postorder, &live, compiled.len(), root_frag);
                            let missing = missing_sites(&self.source_tree, &live, &entry.triplets);
                            for &pi in &m.submissions {
                                answers[pi] = Some(answer);
                                partial.push((pending[pi].0, missing.clone()));
                            }
                        }
                        break;
                    };
                    // Only fragments some open member still misses.
                    let wanted: Vec<FragmentId> = frags
                        .into_iter()
                        .filter(|f| {
                            unanswered.iter().any(|&k| {
                                !self
                                    .solve_cache
                                    .get(&members[active[k]].fp)
                                    .is_some_and(|e| e.triplets.contains_key(f))
                            })
                        })
                        .collect();
                    if wanted.is_empty() {
                        continue;
                    }
                    fragments_evaluated += wanted.len();
                    let mut per_site: BTreeMap<u32, Vec<FragmentId>> = BTreeMap::new();
                    for &f in &wanted {
                        per_site
                            .entry(self.source_tree.site_of(f).0)
                            .or_default()
                            .push(f);
                    }
                    let mut wave_remote = false;
                    for &s in per_site.keys() {
                        let site = SiteId(s);
                        round.report_mut().record_visit(site);
                        if site != self.coordinator {
                            round.report_mut().record_message(
                                self.coordinator,
                                site,
                                request_bytes,
                                MessageKind::BatchQuery,
                            );
                            wave_remote = true;
                        }
                    }
                    if wave_remote {
                        lazy_model_time += self.config.model.transfer_time(request_bytes);
                    }
                    let replies = {
                        let pool = &mut self.pool;
                        let source_tree = &self.source_tree;
                        let forest = &self.forest;
                        let mut reseed_log: Vec<(SiteId, usize)> = Vec::new();
                        let out = pool.eval_round_supervised(
                            &merged,
                            merged.program_fingerprint(),
                            per_site
                                .into_iter()
                                .map(|(s, fs)| (SiteId(s), fs))
                                .collect(),
                            &self.supervisor,
                            &mut |site| {
                                let frags: Vec<(FragmentId, Arc<Tree>)> = source_tree
                                    .fragments_at(site)
                                    .into_iter()
                                    .map(|f| (f, forest.tree_handle(f)))
                                    .collect();
                                reseed_log.push((
                                    site,
                                    frags
                                        .iter()
                                        .map(|(f, _)| forest.fragment(*f).byte_size())
                                        .sum(),
                                ));
                                frags
                            },
                        );
                        record_supervision(
                            round.report_mut(),
                            self.coordinator,
                            &self.config.model,
                            &out.stats,
                            &out.retry_visits,
                            &reseed_log,
                            request_bytes,
                            &mut fault_summary,
                            &mut lazy_model_time,
                        );
                        out.replies
                    };
                    let (wave_compute, envelopes) = absorb_replies(
                        round.report_mut(),
                        replies,
                        &mut merged_triplets,
                        &mut site_cache_hits,
                    );
                    let mut wave_envelopes: Vec<usize> = Vec::new();
                    for (site, bytes) in envelopes {
                        if site != self.coordinator {
                            round.report_mut().record_message(
                                site,
                                self.coordinator,
                                bytes,
                                MessageKind::Envelope,
                            );
                            wave_envelopes.push(bytes);
                        }
                    }
                    lazy_model_time += wave_compute
                        + self
                            .config
                            .model
                            .shared_link_time(wave_envelopes.iter().copied());
                }
            }

            // Bound the coordinator cache (FIFO over fingerprints).
            // Standing queries pin their entries: a pinned fingerprint
            // rotates to the back instead of evicting, and the rotation
            // budget bounds the scan when everything left is pinned (the
            // cache then runs oversized — pinning wins over the bound).
            let pinned: HashSet<QueryFingerprint> =
                self.subscriptions.values().map(|s| s.fp).collect();
            let mut rotations = self.solve_order.len();
            while self.solve_cache.len() > self.config.solve_cache_fingerprints {
                let Some(fp) = self.solve_order.pop_front() else {
                    break;
                };
                if pinned.contains(&fp) {
                    self.solve_order.push_back(fp);
                    if rotations == 0 {
                        break;
                    }
                    rotations -= 1;
                    continue;
                }
                self.solve_cache.remove(&fp);
            }
        }

        let mut report = round.finish();
        report.elapsed_model_s = broadcast + max_compute + collect + solve_total + lazy_model_time;
        report.elapsed_wall_s = wall.elapsed().as_secs_f64();
        report.planned = planned;
        report.cache = Some(parbox_net::CacheEfficacy {
            queries_from_cache: members_from_cache as u64,
            queries_total: members.len() as u64,
            site_cache_hits: site_cache_hits as u64,
            fragments_evaluated: fragments_evaluated as u64,
        });
        if fault_summary.any() {
            report.faults = Some(fault_summary.clone());
        }

        // Feed the observed resolution depth back into the EWMA that
        // gates future lazy rounds, measured post hoc from the solved
        // entries. The round's observation is the *deepest* depth any of
        // its members needed: a shallow member coalesced with a deep
        // scan must not teach the planner that rounds resolve shallow,
        // and a lazy round answered from deep cached triplets does not
        // masquerade as a shallow observation either.
        if self.config.plan_rounds && !active.is_empty() {
            let obs = active
                .iter()
                .filter_map(|&mi| self.solve_cache.get(&members[mi].fp))
                .map(|e| self.observed_resolution_depth(e))
                .max()
                .unwrap_or_else(|| self.forest_stats.max_depth());
            let cap = self.forest_stats.max_depth() as f64;
            self.depth_ewma = (0.5 * self.depth_ewma + 0.5 * obs as f64).min(cap);
        }

        self.stats.rounds += 1;
        self.stats.queries += pending.len() as u64;
        self.stats.members_evaluated += active.len() as u64;
        self.stats.members_from_cache += members_from_cache as u64;
        self.stats.fragments_evaluated += fragments_evaluated as u64;
        self.stats.site_cache_hits += site_cache_hits as u64;
        self.stats.timeouts += fault_summary.timeouts;
        self.stats.retries += fault_summary.retries;
        self.stats.restarts += fault_summary.restarts;
        self.stats.partial_answers += partial.len() as u64;

        partial.sort_by_key(|(t, _)| *t);
        RoundOutcome {
            answers: pending
                .iter()
                .zip(&answers)
                .map(|((t, _), a)| (*t, a.expect("every member was answered")))
                .collect(),
            report,
            members: members.len(),
            members_from_cache,
            fragments_evaluated,
            site_cache_hits,
            partial,
        }
    }

    /// Applies one Section-5 update to the live deployment: pending
    /// queries are flushed first (answered against the pre-update
    /// document), the forest mutates through the shared maintenance path
    /// (incrementally maintaining the planner's [`ForestStats`]), and
    /// the cached state is then brought back in sync.
    ///
    /// For a pure data update under delta maintenance, sync is **repair
    /// in place**: the owning site re-interns only the root-to-change
    /// path of each cached triplet (O(depth) per entry, not
    /// O(|fragment|)) and ships back a varint-DAG triplet delta of the
    /// changed entries; the coordinator re-projects those through each
    /// solve entry's recorded provenance — keeping memoized answers
    /// alive whenever the triplet did not actually change. Structural
    /// updates, a disabled [`EngineConfig::delta_maintenance`], or any
    /// failure mid-repair (crash, wedge, dropped reply) fall back to the
    /// legacy invalidate-and-recompute path — a half-repaired cache is
    /// never trusted. Standing queries are re-checked at the end and
    /// their answer flips delivered in [`UpdateOutcome::notifications`].
    pub fn apply(&mut self, update: Update) -> Result<UpdateOutcome, ViewError> {
        let flushed = self.flush();
        let mut report = RunReport::new();
        let wall = Instant::now();
        let patch = if self.config.delta_maintenance {
            data_patch(&update)
        } else {
            None
        };
        let effect = apply_update_tracked(
            &mut self.forest,
            &mut self.placement,
            &mut self.forest_stats,
            update,
        )?;
        let invalidated;
        let mut repaired = 0usize;
        let mut efficacy = RepairEfficacy::default();
        let mut faults = FaultSummary::default();

        let delta = effect
            .delta
            .filter(|_| self.config.delta_maintenance && !effect.restructured());
        if let (Some(d), Some(patch)) = (delta, patch) {
            // ---- Delta path: repair both cache levels in place ----
            let site = self.placement.site_of(d.frag);
            self.pool.ensure_site(site);
            report.record_visit(site);
            if site != self.coordinator {
                report.record_message(
                    self.coordinator,
                    site,
                    UPDATE_CONTROL_BYTES,
                    MessageKind::Control,
                );
            }
            match self
                .pool
                .repair(site, d.frag, patch, d.anchor, self.supervisor.deadline)
            {
                Some(reply) if reply.patched => {
                    report.record_compute(site, reply.elapsed);
                    report.record_work(site, reply.work_units);
                    let delta_bytes: usize = reply.outcomes.iter().map(|o| o.delta_bytes).sum();
                    if site != self.coordinator && delta_bytes > 0 {
                        report.record_message(
                            site,
                            self.coordinator,
                            delta_bytes,
                            MessageKind::Envelope,
                        );
                    }
                    let (kept, dropped) = self.repair_coordinator_entries(d.frag, &reply.outcomes);
                    repaired = reply.outcomes.len() + kept;
                    invalidated = reply.dropped as usize + dropped;
                    efficacy = RepairEfficacy {
                        repaired: repaired as u64,
                        invalidated: invalidated as u64,
                        nodes_recomputed: reply.nodes_recomputed,
                        delta_bytes: delta_bytes as u64,
                    };
                }
                _ => {
                    // The actor died, wedged past the deadline, dropped
                    // the reply mid-apply, or never owned the fragment
                    // (`!patched`). A half-repaired cache must never
                    // serve: restart the actor with the authoritative
                    // post-update handles (wiping its caches) and
                    // invalidate the coordinator's entries.
                    self.reseed_site(site, &mut faults);
                    invalidated = self.purge_fragment(d.frag);
                    efficacy.invalidated = invalidated as u64;
                }
            }
        } else {
            // ---- Legacy path: invalidate-and-recompute ----
            invalidated = self.invalidate_for(&effect, &mut report, &mut faults);
            efficacy.invalidated = invalidated as u64;
        }
        report.repair = Some(efficacy);
        // A split that lands the new fragment on a different site ships
        // the subtree there — the one data-plane cost an update can have.
        if let (Some(&host), Some(&new)) = (effect.touched.first(), effect.added.first()) {
            let host_site = self.placement.site_of(host);
            let new_site = self.placement.site_of(new);
            if host_site != new_site {
                report.record_message(
                    host_site,
                    new_site,
                    self.forest.fragment(new).byte_size(),
                    MessageKind::Data,
                );
            }
        }
        if effect.restructured() {
            self.source_tree = SourceTree::new(&self.forest, &self.placement);
            self.coordinator = self.source_tree.site_of(self.forest.root_fragment());
            // The fragment tree changed shape: keep the depth statistic
            // within the new bounds.
            self.depth_ewma = self.depth_ewma.min(self.forest_stats.max_depth() as f64);
        }

        report.elapsed_model_s = report.network_cost_s(&self.config.model);
        report.elapsed_wall_s = wall.elapsed().as_secs_f64();
        if faults.any() {
            self.stats.restarts += faults.restarts;
            report.faults = Some(faults);
        }
        self.stats.updates += 1;
        self.stats.entries_repaired += repaired as u64;
        self.stats.entries_invalidated += invalidated as u64;
        self.stats.repair_nodes_recomputed += efficacy.nodes_recomputed;
        self.stats.repair_delta_bytes += efficacy.delta_bytes;

        // Standing queries: re-check and push any answer flips.
        let notifications = self.refresh_subscriptions();
        self.stats.notifications += notifications.len() as u64;
        Ok(UpdateOutcome {
            flushed,
            effect,
            report,
            invalidated,
            repaired,
            notifications,
        })
    }

    /// The legacy maintenance path: reload touched fragments at their
    /// sites (dropping the site cache entries) and purge the
    /// coordinator's. Returns the coordinator entries dropped.
    fn invalidate_for(
        &mut self,
        effect: &UpdateEffect,
        report: &mut RunReport,
        faults: &mut FaultSummary,
    ) -> usize {
        let mut invalidated = 0usize;
        for &gone in &effect.removed {
            // The placement keeps the stale mapping of a merged-away
            // fragment, which is exactly the site its worker lives on.
            let site = self.placement.site_of(gone);
            if !self.pool.unload(site, gone) {
                // Dead actor (e.g. crashed mid-apply): restart it with
                // the authoritative post-update fragment set, which no
                // longer contains `gone`.
                self.reseed_site(site, faults);
            }
            invalidated += self.purge_fragment(gone);
        }
        for f in effect.stale() {
            let site = self.placement.site_of(f);
            self.pool.ensure_site(site);
            if !self.pool.load(site, f, self.forest.tree_handle(f)) {
                self.reseed_site(site, faults);
            }
            invalidated += self.purge_fragment(f);
            report.record_visit(site);
            if site != self.coordinator {
                report.record_message(
                    self.coordinator,
                    site,
                    UPDATE_CONTROL_BYTES,
                    MessageKind::Control,
                );
            }
        }
        invalidated
    }

    /// Repairs the coordinator's solve-cache entries for `frag` from
    /// the owning site's repair outcomes. Per entry holding a triplet
    /// for `frag`: an *unchanged* source triplet keeps the memoized
    /// answer alive; a changed one is re-projected through the entry's
    /// recorded provenance (voiding the answer); an entry whose source
    /// program the site no longer caches is invalidated. Entries
    /// *without* a triplet for `frag` keep their memoized answers —
    /// those were certain under any content of the uncovered fragments,
    /// which a pure data update cannot change. Returns
    /// `(repaired, invalidated)`.
    fn repair_coordinator_entries(
        &mut self,
        frag: FragmentId,
        outcomes: &[RepairOutcome],
    ) -> (usize, usize) {
        let by_fp: HashMap<QueryFingerprint, &RepairOutcome> =
            outcomes.iter().map(|o| (o.fingerprint, o)).collect();
        let (mut repaired, mut invalidated) = (0usize, 0usize);
        for entry in self.solve_cache.values_mut() {
            if !entry.triplets.contains_key(&frag) {
                continue;
            }
            let source = entry
                .sources
                .get(&frag)
                .and_then(|(fp, proj)| by_fp.get(fp).map(|o| (*o, Arc::clone(proj))));
            match source {
                Some((o, _)) if !o.changed => repaired += 1,
                Some((o, proj)) => {
                    let inv: HashMap<u32, u32> = proj
                        .iter()
                        .enumerate()
                        .map(|(i, &h)| (h, i as u32))
                        .collect();
                    entry
                        .triplets
                        .insert(frag, Arc::new(project_triplet(&o.triplet, &proj, &inv)));
                    entry.answer = None;
                    repaired += 1;
                }
                None => {
                    entry.triplets.remove(&frag);
                    entry.sources.remove(&frag);
                    entry.answer = None;
                    invalidated += 1;
                }
            }
        }
        (repaired, invalidated)
    }

    /// Restarts `site`'s actor thread and re-seeds it with every
    /// fragment the placement maps there, from the coordinator's
    /// authoritative forest handles. Used when a maintenance message
    /// finds the actor's inbox dead.
    fn reseed_site(&mut self, site: SiteId, faults: &mut FaultSummary) {
        let frags: Vec<(FragmentId, Arc<Tree>)> = self
            .forest
            .fragment_ids()
            .filter(|&f| self.placement.site_of(f) == site)
            .map(|f| (f, self.forest.tree_handle(f)))
            .collect();
        faults.restarts += 1;
        faults.reseeded_fragments += frags.len() as u64;
        self.pool.restart_site(site, frags);
    }

    /// Drops `frag`'s triplet from every coordinator cache entry and
    /// voids the memoized answers (any document change can flip any
    /// cached answer). Returns the number of entries dropped.
    fn purge_fragment(&mut self, frag: FragmentId) -> usize {
        let mut n = 0usize;
        for entry in self.solve_cache.values_mut() {
            if entry.triplets.remove(&frag).is_some() {
                n += 1;
            }
            entry.sources.remove(&frag);
            entry.answer = None;
        }
        n
    }
}

/// Absorbs one wave of site replies into a round report and the
/// merged-triplet pool: records compute and work, counts site-cache
/// hits, sizes each site's envelope in the DAG wire format, and hands
/// back the slowest site's measured compute plus every replying site's
/// envelope bytes. The caller records the envelope *messages* — the
/// eager round through [`BatchRound::reply`]'s single-visit protocol
/// enforcement, lazy waves directly (revisiting sites is their point).
fn absorb_replies(
    report: &mut RunReport,
    replies: Vec<EvalReply>,
    merged_triplets: &mut HashMap<FragmentId, Arc<Triplet>>,
    site_cache_hits: &mut usize,
) -> (f64, Vec<(SiteId, usize)>) {
    let mut max_compute = 0.0f64;
    let mut envelopes: Vec<(SiteId, usize)> = Vec::new();
    for reply in replies {
        report.record_compute(reply.site, reply.elapsed);
        report.record_work(reply.site, reply.work_units);
        max_compute = max_compute.max(reply.elapsed.as_secs_f64());
        *site_cache_hits += reply.triplets.iter().filter(|(_, _, hit)| *hit).count();
        let entries: Vec<(FragmentId, &Triplet)> =
            reply.triplets.iter().map(|(f, t, _)| (*f, &**t)).collect();
        envelopes.push((reply.site, site_envelope_dag_wire_size(&entries)));
        for (f, t, _) in reply.triplets {
            merged_triplets.insert(f, t);
        }
    }
    (max_compute, envelopes)
}

/// Accounts one supervised round's recovery actions into the report:
/// each retry is an extra visit plus a re-sent request (supervision is
/// exactly the sanctioned exception to the one-visit discipline), each
/// restart's re-seeded fragments are data-plane traffic, and the fault
/// counters accumulate into the round's summary.
#[allow(clippy::too_many_arguments)]
fn record_supervision(
    report: &mut RunReport,
    coordinator: SiteId,
    model: &NetworkModel,
    stats: &FaultSummary,
    retry_visits: &[SiteId],
    reseeds: &[(SiteId, usize)],
    request_bytes: usize,
    summary: &mut FaultSummary,
    model_time: &mut f64,
) {
    for &site in retry_visits {
        report.record_visit(site);
        if site != coordinator {
            report.record_message(coordinator, site, request_bytes, MessageKind::BatchQuery);
            *model_time += model.transfer_time(request_bytes);
        }
    }
    for &(site, bytes) in reseeds {
        if site != coordinator && bytes > 0 {
            report.record_message(coordinator, site, bytes, MessageKind::Data);
            *model_time += model.transfer_time(bytes);
        }
    }
    summary.absorb(stats);
}

/// The sites owning live fragments the entry has no triplet for —
/// ascending, deduped: the `missing_sites` of a degraded answer.
fn missing_sites(
    source_tree: &SourceTree,
    live: &[FragmentId],
    triplets: &HashMap<FragmentId, Arc<Triplet>>,
) -> Vec<SiteId> {
    let sites: std::collections::BTreeSet<u32> = live
        .iter()
        .filter(|f| !triplets.contains_key(f))
        .map(|&f| source_tree.site_of(f).0)
        .collect();
    sites.into_iter().map(SiteId).collect()
}

/// Pessimistic fallback solve for a degraded answer: every missing live
/// fragment is stood in by an all-FALSE triplet of the member's width
/// (as if its subtree were absent), which closes the equation system so
/// it solves. The result is a best-effort answer, marked
/// [`Completeness::Partial`] by the caller and never memoized.
fn degraded_solve(
    entry: &SolveEntry,
    postorder: &[FragmentId],
    live: &[FragmentId],
    width: usize,
    root_frag: FragmentId,
) -> bool {
    let mut sys = EquationSystem::new();
    for (&f, t) in &entry.triplets {
        sys.insert(f, (**t).clone());
    }
    let absent = Triplet {
        v: vec![Formula::FALSE; width],
        cv: vec![Formula::FALSE; width],
        dv: vec![Formula::FALSE; width],
    };
    for &f in live {
        if !entry.triplets.contains_key(&f) {
            sys.insert(f, absent.clone());
        }
    }
    let resolved = sys
        .solve(postorder)
        .expect("all-FALSE stand-ins close every live fragment");
    resolved[&root_frag].v[entry.root as usize]
}

/// Re-solves a member program from its cached per-fragment triplets.
fn solve_entry(entry: &SolveEntry, postorder: &[FragmentId], root_frag: FragmentId) -> bool {
    let mut sys = EquationSystem::new();
    for (&f, t) in &entry.triplets {
        sys.insert(f, (**t).clone());
    }
    let resolved = sys
        .solve(postorder)
        .expect("cached triplets cover every live fragment");
    resolved[&root_frag].v[entry.root as usize]
}

/// Projects a member's triplet out of a merged batch triplet: entry `i`
/// of the member is entry `proj[i]` of the merged program, with variable
/// sub-query ids renumbered back into the member's id space (`inv`).
fn project_triplet(merged: &Triplet, proj: &[SubId], inv: &HashMap<u32, u32>) -> Triplet {
    let renumber = |f: &Formula| {
        f.substitute(&|var: Var| {
            let sub = *inv
                .get(&var.sub)
                .expect("variable stays within the member's sub-query closure");
            Some(Formula::var(Var::new(var.frag, var.vec, sub)))
        })
    };
    let row = |xs: &[Formula]| proj.iter().map(|&i| renumber(&xs[i as usize])).collect();
    Triplet {
        v: row(&merged.v),
        cv: row(&merged.cv),
        dv: row(&merged.dv),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::parbox;
    use parbox_net::{Cluster, FaultKind};
    use parbox_query::parse_query;
    use parbox_xml::NodeId;

    fn fig1_forest() -> Forest {
        let tree = Tree::parse("<r><x><z><A/><A/></z><pad/></x><y><B/></y></r>").unwrap();
        let mut forest = Forest::from_tree(tree);
        let f0 = forest.root_fragment();
        let find = |forest: &Forest, frag, label: &str| {
            let t = &forest.fragment(frag).tree;
            t.descendants(t.root())
                .find(|&n| t.label_str(n) == label)
                .unwrap()
        };
        let x = find(&forest, f0, "x");
        let fx = forest.split(f0, x).unwrap();
        let z = find(&forest, fx, "z");
        forest.split(fx, z).unwrap();
        let y = find(&forest, f0, "y");
        forest.split(f0, y).unwrap();
        forest
    }

    fn engine() -> Engine {
        let forest = fig1_forest();
        let placement = Placement::one_per_fragment(&forest);
        Engine::new(forest, placement, EngineConfig::default()).unwrap()
    }

    /// An engine with delta maintenance off: every update invalidates
    /// and recomputes, as before delta repair existed.
    fn legacy_engine() -> Engine {
        let forest = fig1_forest();
        let placement = Placement::one_per_fragment(&forest);
        let config = EngineConfig {
            delta_maintenance: false,
            ..EngineConfig::default()
        };
        Engine::new(forest, placement, config).unwrap()
    }

    fn oracle(engine: &Engine, q: &Query) -> bool {
        let cluster = Cluster::new(engine.forest(), engine.placement(), NetworkModel::lan());
        parbox(&cluster, &compile(q)).answer
    }

    const SRCS: [&str; 6] = [
        "[//A and //B]",
        "[//A]",
        "[//B and //pad]",
        "[//x[z/A]]",
        "[//A and not //B]",
        "[not(//nothing)]",
    ];

    #[test]
    fn engine_agrees_with_parbox() {
        let mut e = engine();
        for src in SRCS {
            let q = parse_query(src).unwrap();
            assert_eq!(e.query(&q).answer, oracle(&e, &q), "{src}");
        }
    }

    #[test]
    fn query_parks_pending_round_instead_of_discarding_it() {
        let mut e = engine();
        let a = parse_query("[//A]").unwrap();
        let b = parse_query("[//B]").unwrap();
        let ticket = e.submit(&a);
        // query() flushes the pending round for `a` — its answer must
        // remain retrievable, not be silently dropped.
        let out = e.query(&b);
        assert_eq!(out.answer, oracle(&e, &b));
        let parked = e.take_parked_rounds();
        assert_eq!(parked.len(), 1);
        assert_eq!(parked[0].answers, vec![(ticket, oracle(&e, &a))]);
        assert!(e.take_parked_rounds().is_empty(), "drained");
    }

    #[test]
    fn batches_sharing_a_tail_member_do_not_collide_in_site_caches() {
        // Regression: two merged batch programs ending in the same member
        // share a *root* fingerprint. If the site caches keyed by it,
        // round 2 would be served round 1's (differently shaped) triplets
        // and the projection would read the wrong entries. (Legacy
        // engine: delta repair would keep B's answer memoized and round
        // 2 would never merge [C, B].)
        let mut e = legacy_engine();
        let a = parse_query("[//A]").unwrap();
        let b = parse_query("[//B]").unwrap();
        let c = parse_query("[//pad]").unwrap();
        // Round 1: merged program [A, B], cached at every site.
        e.submit(&a);
        e.submit(&b);
        e.flush().unwrap();
        // Invalidate one fragment so B is active again next round.
        let frag = FragmentId(3);
        let parent = e.forest().fragment(frag).tree.root();
        e.apply(Update::InsNode {
            frag,
            parent,
            label: "noise".into(),
            text: None,
        })
        .unwrap();
        // Round 2: merged program [C, B] — same root fingerprint as
        // round 1's, different program. Every fragment is requested
        // (C is new), so stale site-cache entries would be hit.
        e.submit(&c);
        e.submit(&b);
        let out = e.flush().unwrap();
        assert_eq!(out.answers[0].1, oracle(&e, &c), "[//pad]");
        assert_eq!(out.answers[1].1, oracle(&e, &b), "[//B]");
    }

    #[test]
    fn repeat_query_is_served_with_zero_data_plane_messages() {
        let mut e = engine();
        let q = parse_query("[//A and //B]").unwrap();
        let first = e.query(&q);
        assert!(!first.from_cache);
        assert!(first.report.data_plane_bytes() > 0);

        let second = e.query(&q);
        assert!(second.from_cache);
        assert_eq!(second.answer, first.answer);
        assert_eq!(second.report.total_messages(), 0, "no traffic at all");
        assert_eq!(second.report.bytes_of_kind(MessageKind::Triplet), 0);
        assert_eq!(second.report.bytes_of_kind(MessageKind::Envelope), 0);
        assert_eq!(second.report.max_visits(), 0, "no site contacted");
    }

    #[test]
    fn duplicate_submissions_coalesce_within_a_round() {
        let mut e = engine();
        let q = parse_query("[//A]").unwrap();
        let r = parse_query("[//B]").unwrap();
        let t1 = e.submit(&q);
        let t2 = e.submit(&r);
        let t3 = e.submit(&q);
        let out = e.flush().unwrap();
        assert_eq!(out.members, 2, "three submissions, two programs");
        assert_eq!(out.answers.len(), 3);
        let by_ticket: HashMap<Ticket, bool> = out.answers.iter().copied().collect();
        assert_eq!(by_ticket[&t1], by_ticket[&t3]);
        assert_eq!(by_ticket[&t1], oracle(&e, &q));
        assert_eq!(by_ticket[&t2], oracle(&e, &r));
        // One merged round: one visit per site at most.
        assert!(out.report.max_visits() <= 1);
    }

    #[test]
    fn admission_respects_batch_bound_and_window() {
        let forest = fig1_forest();
        let placement = Placement::one_per_fragment(&forest);
        let config = EngineConfig {
            max_batch: 2,
            batch_window: Duration::from_secs(3600),
            ..EngineConfig::default()
        };
        let mut e = Engine::new(forest, placement, config).unwrap();
        e.submit(&parse_query("[//A]").unwrap());
        assert!(e.poll().is_none(), "one pending, window still open");
        e.submit(&parse_query("[//B]").unwrap());
        let out = e.poll().expect("batch bound reached");
        assert_eq!(out.answers.len(), 2);
        assert_eq!(e.pending(), 0);
        // An elapsed window also flushes.
        let mut e2 = {
            let forest = fig1_forest();
            let placement = Placement::one_per_fragment(&forest);
            Engine::new(
                forest,
                placement,
                EngineConfig {
                    max_batch: 100,
                    batch_window: Duration::ZERO,
                    ..EngineConfig::default()
                },
            )
            .unwrap()
        };
        e2.submit(&parse_query("[//A]").unwrap());
        assert!(e2.poll().is_some(), "zero window flushes immediately");
    }

    #[test]
    fn update_repairs_caches_in_place_and_flips_the_answer() {
        let mut e = engine();
        let q = parse_query("[//goal]").unwrap();
        assert!(!e.query(&q).answer);
        // Insert `goal` into fragment 3 (the y-subtree): a pure data
        // update, maintained by delta repair instead of invalidation.
        let frag = FragmentId(3);
        let parent = {
            let t = &e.forest().fragment(frag).tree;
            t.root()
        };
        let up = e
            .apply(Update::InsNode {
                frag,
                parent,
                label: "goal".into(),
                text: None,
            })
            .unwrap();
        assert_eq!(up.effect.touched, vec![frag]);
        assert!(up.repaired >= 2, "site entry and solve entry repaired");
        assert_eq!(up.invalidated, 0, "nothing thrown away");
        let repair = up.report.repair.expect("delta update reports efficacy");
        assert!(repair.nodes_recomputed >= 1, "O(depth) path re-interned");
        assert!(repair.delta_bytes >= 1, "changed triplet shipped as delta");

        // The repaired caches answer the flipped query with zero
        // data-plane messages — the triplets are already current.
        let after = e.query(&q);
        assert!(after.answer, "update flipped the answer");
        assert_eq!(after.answer, oracle(&e, &q));
        assert!(after.from_cache, "repaired solve entry re-solves locally");
        assert_eq!(after.report.total_messages(), 0);
    }

    #[test]
    fn irrelevant_update_keeps_answers_memoized() {
        // Inserting a node no cached query can see leaves every triplet
        // id-identical: delta repair certifies the entries unchanged and
        // the memoized answers stay hot — the update is nearly free.
        let mut e = engine();
        let q = parse_query("[//A and //B]").unwrap();
        e.query(&q);
        let frag = FragmentId(3);
        let parent = {
            let t = &e.forest().fragment(frag).tree;
            t.root()
        };
        let up = e
            .apply(Update::InsNode {
                frag,
                parent,
                label: "noise".into(),
                text: None,
            })
            .unwrap();
        assert!(up.repaired >= 2);
        assert_eq!(up.invalidated, 0);
        let repair = up.report.repair.unwrap();
        assert_eq!(
            repair.delta_bytes,
            up.report.bytes_of_kind(MessageKind::Envelope) as u64,
            "unchanged entries ship 1-byte acks, not triplets"
        );
        let before = e.stats().fragments_evaluated;
        let again = e.query(&q);
        assert_eq!(again.answer, oracle(&e, &q));
        assert!(again.from_cache, "memoized answer survived the update");
        assert_eq!(
            e.stats().fragments_evaluated,
            before,
            "no fragment went back to its site"
        );
    }

    #[test]
    fn legacy_invalidation_reevaluates_one_fragment() {
        // With delta maintenance off, the pre-existing contract holds:
        // the touched fragment is invalidated and exactly it re-runs
        // `bottomUp` on the next query.
        let mut e = legacy_engine();
        let q = parse_query("[//A and //B]").unwrap();
        e.query(&q);
        let frag = FragmentId(3);
        let parent = {
            let t = &e.forest().fragment(frag).tree;
            t.root()
        };
        let up = e
            .apply(Update::InsNode {
                frag,
                parent,
                label: "noise".into(),
                text: None,
            })
            .unwrap();
        assert!(up.invalidated >= 1);
        assert_eq!(up.repaired, 0);
        let before = e.stats().fragments_evaluated;
        let again = e.query(&q);
        assert_eq!(again.answer, oracle(&e, &q));
        assert!(!again.from_cache);
        assert_eq!(
            e.stats().fragments_evaluated - before,
            1,
            "only the invalidated fragment goes back to its site"
        );
    }

    #[test]
    fn delta_and_legacy_engines_agree_on_update_streams() {
        // Per-step oracle equivalence of the two maintenance paths: the
        // repaired caches must serve byte-identical answers to the
        // invalidate-and-recompute baseline on every step.
        let mut delta = engine();
        let mut legacy = legacy_engine();
        let queries: Vec<Query> = SRCS.iter().map(|s| parse_query(s).unwrap()).collect();
        let updates = [
            ("goal", FragmentId(3)),
            ("pad", FragmentId(1)),
            ("A", FragmentId(2)),
            ("B", FragmentId(0)),
        ];
        for (label, frag) in updates {
            let parent = delta.forest().fragment(frag).tree.root();
            let up = Update::InsNode {
                frag,
                parent,
                label: label.into(),
                text: None,
            };
            delta.apply(up.clone()).unwrap();
            legacy.apply(up).unwrap();
            for q in &queries {
                assert_eq!(
                    delta.query(q).answer,
                    legacy.query(q).answer,
                    "{label} -> {frag:?}"
                );
                assert_eq!(delta.query(q).answer, oracle(&delta, q));
            }
        }
        assert!(delta.stats().entries_repaired > 0);
        assert_eq!(legacy.stats().entries_repaired, 0);
    }

    #[test]
    fn standing_query_pushes_answer_flips() {
        let mut e = engine();
        let q = parse_query("[//goal]").unwrap();
        let sub = e.subscribe(&q);
        assert_eq!(e.subscription_answer(sub), Some(false));
        assert_eq!(e.subscription_count(), 1);
        let frag = FragmentId(3);
        let parent = e.forest().fragment(frag).tree.root();
        // An irrelevant update pushes nothing.
        let up = e
            .apply(Update::InsNode {
                frag,
                parent,
                label: "noise".into(),
                text: None,
            })
            .unwrap();
        assert!(up.notifications.is_empty());
        // A relevant one pushes the flip with the outcome.
        let up = e
            .apply(Update::InsNode {
                frag,
                parent,
                label: "goal".into(),
                text: None,
            })
            .unwrap();
        assert_eq!(
            up.notifications,
            vec![Notification {
                subscription: sub,
                answer: true
            }]
        );
        assert_eq!(e.subscription_answer(sub), Some(true));
        // Deleting the node flips it back.
        let goal = {
            let t = &e.forest().fragment(frag).tree;
            t.descendants(t.root())
                .find(|&n| t.label_str(n) == "goal")
                .unwrap()
        };
        let up = e.apply(Update::DelNode { frag, node: goal }).unwrap();
        assert_eq!(
            up.notifications,
            vec![Notification {
                subscription: sub,
                answer: false
            }]
        );
        assert_eq!(e.stats().notifications, 2);
        assert!(e.unsubscribe(sub));
        assert!(!e.unsubscribe(sub), "double-cancel reports unknown");
    }

    #[test]
    fn subscription_pins_its_solve_entry_against_eviction() {
        let forest = fig1_forest();
        let placement = Placement::one_per_fragment(&forest);
        let config = EngineConfig {
            solve_cache_fingerprints: 1,
            ..EngineConfig::default()
        };
        let mut e = Engine::new(forest, placement, config).unwrap();
        let sub = e.subscribe(&parse_query("[//A]").unwrap());
        // Churn distinct fingerprints through the 1-entry cache.
        for i in 0..3 {
            e.query(&parse_query(&format!("[//x{i}]")).unwrap());
        }
        // The pinned entry survived: refreshing it after an irrelevant
        // update needs no round at all (the memoized answer was kept by
        // an unchanged repair), where an evicted entry would force one.
        let frag = FragmentId(3);
        let parent = e.forest().fragment(frag).tree.root();
        let rounds = e.stats().rounds;
        let up = e
            .apply(Update::InsNode {
                frag,
                parent,
                label: "noise".into(),
                text: None,
            })
            .unwrap();
        assert!(up.notifications.is_empty());
        assert_eq!(e.stats().rounds, rounds, "refresh cost zero rounds");
        assert_eq!(e.subscription_answer(sub), Some(true));
    }

    #[test]
    fn split_and_merge_keep_engine_consistent() {
        let mut e = engine();
        let q = parse_query("[//B]").unwrap();
        assert!(e.query(&q).answer);
        // Split B's node out of fragment 3 onto a brand-new site.
        let frag = FragmentId(3);
        let b: NodeId = {
            let t = &e.forest().fragment(frag).tree;
            t.descendants(t.root())
                .find(|&n| t.label_str(n) == "B")
                .unwrap()
        };
        let up = e
            .apply(Update::SplitFragments {
                frag,
                node: b,
                to_site: Some(SiteId(9)),
            })
            .unwrap();
        assert_eq!(up.effect.added.len(), 1);
        // The subtree shipped to the new site is data-plane traffic.
        assert!(up.report.bytes_of_kind(MessageKind::Data) > 0);
        assert!(e.query(&q).answer);
        assert_eq!(e.query(&q).answer, oracle(&e, &q));

        // Merge it back.
        let new = up.effect.added[0];
        let vnode = {
            let t = &e.forest().fragment(frag).tree;
            t.virtual_nodes(t.root())
                .into_iter()
                .find(|&(_, f)| f == new)
                .unwrap()
                .0
        };
        let down = e
            .apply(Update::MergeFragments { frag, node: vnode })
            .unwrap();
        assert_eq!(down.effect.removed, vec![new]);
        assert!(e.query(&q).answer);
        assert_eq!(e.query(&q).answer, oracle(&e, &q));
    }

    #[test]
    fn engine_switches_to_lazy_waves_once_depth_statistic_warms() {
        // A 5-link chain, one site per fragment, free network (so the
        // planner compares pure computation): queries that resolve at
        // the root fragment drive the resolution-depth EWMA down from
        // its pessimistic start, after which fresh rounds must switch to
        // lazy wavefronts and stop shipping the deep fragments.
        let mut xml = String::new();
        for i in 0..10 {
            xml.push_str(&format!("<lvl{i}><mark{i}/><pad/>"));
        }
        xml.push_str("<bottom/>");
        for i in (0..10).rev() {
            xml.push_str(&format!("</lvl{i}>"));
        }
        let mut forest = Forest::from_tree(Tree::parse(&xml).unwrap());
        parbox_frag::strategies::chain(&mut forest, 5).unwrap();
        let card = forest.card();
        let placement = Placement::one_per_fragment(&forest);
        let config = EngineConfig {
            model: NetworkModel::infinite(),
            ..EngineConfig::default()
        };
        let mut e = Engine::new(forest, placement, config).unwrap();
        assert_eq!(
            e.resolve_depth_ewma(),
            (card - 1) as f64,
            "pessimistic start"
        );

        let mut saw_lazy = false;
        for i in 0..6 {
            // Distinct fingerprints, all resolvable at the root fragment
            // (mark0 is in it, so the disjunction folds to true there).
            let q = parse_query(&format!("[//mark0 or //nope{i}]")).unwrap();
            let before = e.stats().fragments_evaluated;
            let out = e.query(&q);
            assert!(out.answer, "query {i}");
            let planned = out.report.planned.expect("planned round");
            if planned.strategy == "LazyParBoX" {
                saw_lazy = true;
                assert!(
                    (e.stats().fragments_evaluated - before) < card as u64,
                    "lazy round must not ship the whole chain"
                );
            }
        }
        assert!(saw_lazy, "EWMA never triggered a lazy round");
        assert!(e.resolve_depth_ewma() < 1.0, "statistic converged shallow");

        // A deep query still answers correctly (the wave loop walks all
        // the way down when resolution demands it).
        let deep = parse_query("[//bottom]").unwrap();
        assert_eq!(e.query(&deep).answer, oracle(&e, &deep));
    }

    #[test]
    fn site_cache_serves_when_coordinator_cache_is_dropped() {
        let mut e = engine();
        let q = parse_query("[//A and //B]").unwrap();
        e.query(&q);
        // Memory pressure at the coordinator: triplets must be re-shipped,
        // but the sites still skip bottomUp (their caches survive).
        e.clear_solve_cache();
        let card = e.forest().card();
        let again = e.query(&q);
        assert!(!again.from_cache);
        assert!(again.report.data_plane_bytes() > 0, "triplets re-shipped");
        assert_eq!(
            e.stats().site_cache_hits as usize,
            card,
            "every fragment served from its site cache"
        );
        assert_eq!(
            again.report.total_work(),
            (compile(&q).len() * card) as u64,
            "only the coordinator's solve pass did any work"
        );
    }

    // ---- chaos: supervision and degraded answers --------------------

    fn chaos_cfg(attempts: u32, restart_after: u32) -> SupervisorConfig {
        SupervisorConfig {
            deadline: Duration::from_millis(40),
            max_attempts: attempts,
            restart_after_timeouts: restart_after,
            backoff_base: Duration::from_millis(2),
            jitter_seed: 11,
        }
    }

    fn chaos_engine(plan: FaultPlan, supervisor: SupervisorConfig) -> Engine {
        let forest = fig1_forest();
        let placement = Placement::one_per_fragment(&forest);
        let config = EngineConfig {
            fault_plan: plan,
            supervisor: Some(supervisor),
            ..EngineConfig::default()
        };
        Engine::new(forest, placement, config).unwrap()
    }

    #[test]
    fn injected_panic_recovers_to_a_complete_answer() {
        // Site 3's actor panics on its first request; the supervisor
        // restarts it, re-seeds its fragment, and the round completes.
        let plan = FaultPlan::scripted(vec![(3, 0, FaultKind::Panic)], Duration::ZERO);
        let mut e = chaos_engine(plan, chaos_cfg(4, 2));
        let q = parse_query("[//A and //B]").unwrap();
        let out = e.query(&q);
        assert_eq!(out.answer, oracle(&e, &q));
        assert_eq!(out.completeness, Completeness::Complete);
        assert_eq!(e.stats().restarts, 1);
        assert!(e.stats().retries >= 1);
        let faults = out.report.faults.expect("faulty round reports its summary");
        assert_eq!(faults.restarts, 1);
        assert!(faults.max_recovery_s() > 0.0);
    }

    #[test]
    fn site_down_past_retries_degrades_without_lying() {
        // Site 3 wedges forever and the supervisor never restarts it
        // (one attempt, no restart threshold): every round that needs
        // its fragment must degrade rather than hang or crash.
        let plan = FaultPlan::scripted(vec![(3, 0, FaultKind::Wedge)], Duration::ZERO);
        let mut e = chaos_engine(plan, chaos_cfg(1, u32::MAX));
        // B lives only on the wedged site: the answer is undetermined
        // without it, so it degrades to a pessimistic Partial.
        let and = parse_query("[//A and //B]").unwrap();
        let out = e.query(&and);
        assert!(!out.answer, "missing subtree is assumed empty");
        assert_eq!(
            out.completeness,
            Completeness::Partial {
                missing_sites: vec![SiteId(3)]
            }
        );
        assert!(e.stats().timeouts >= 1);
        assert!(e.stats().partial_answers >= 1);
        // A lives elsewhere: the surviving coverage already determines
        // the answer, so it is certain — Complete, and never wrong.
        let a = parse_query("[//A]").unwrap();
        let out = e.query(&a);
        assert!(out.answer);
        assert_eq!(out.completeness, Completeness::Complete);
        assert_eq!(out.answer, oracle(&e, &a));
    }

    #[test]
    fn crash_during_apply_is_detected_and_reseeded_next_round() {
        // Op 0 at site 3 is the first query's eval; op 1 is the update's
        // fragment load, which crashes the actor mid-apply. The next
        // round finds the dead inbox, restarts the actor with the
        // post-update fragment, and answers exactly.
        let plan = FaultPlan::scripted(vec![(3, 1, FaultKind::CrashApply)], Duration::ZERO);
        let mut e = chaos_engine(plan, chaos_cfg(4, 2));
        let q = parse_query("[//goal]").unwrap();
        assert!(!e.query(&q).answer);
        let frag = FragmentId(3);
        let parent = e.forest().fragment(frag).tree.root();
        e.apply(Update::InsNode {
            frag,
            parent,
            label: "goal".into(),
            text: None,
        })
        .unwrap();
        let out = e.query(&q);
        assert!(out.answer, "post-update answer");
        assert_eq!(out.answer, oracle(&e, &q));
        assert_eq!(out.completeness, Completeness::Complete);
        assert_eq!(e.stats().restarts, 1);
    }

    #[test]
    fn shutdown_drains_pending_answers_and_joins_workers() {
        let mut e = engine();
        let q = parse_query("[//A]").unwrap();
        let expected = oracle(&e, &q);
        let t = e.submit(&q);
        let report = e.shutdown();
        assert_eq!(report.panicked_workers, 0);
        assert_eq!(report.drained.len(), 1);
        assert_eq!(report.drained[0].answers, vec![(t, expected)]);
        assert!(report.drained[0].partial.is_empty());
    }
}

//! Intern-path contention probes: sharded arena vs. the single-mutex
//! baseline.
//!
//! The seed arena serialized every constructor call through one
//! process-wide `Mutex<Inner>`; with ≥16 site actors the hot path is a
//! lock queue, not a cluster. This module keeps a faithful replica of
//! that baseline (same canonicalization, same Fx-hashed intern map, same
//! per-node metadata) behind its own mutex, and drives both it and the
//! real sharded arena with an identical deterministic workload so the
//! `expF_saturation` benchmark and the contention regression test can
//! report an apples-to-apples throughput comparison.
//!
//! The workload models steady-state serving: a majority of interns
//! re-request a bounded working set of triplet variables (the part the
//! sharded arena answers from thread-local caches without any lock),
//! the rest build `¬`/`∧`/`∨` structure over recently produced ids (the
//! part that spreads across shard locks instead of queueing on one).
//!
//! # Wall-clock vs. modeled throughput
//!
//! Each probe reports two numbers per arena, mirroring the
//! `elapsed_wall_s` / `elapsed_model_s` split the experiment reports
//! already use for site parallelism:
//!
//! * **wall** — measured aggregate ops/sec of `threads` OS threads.
//!   Faithful only when the host actually has that many cores; on the
//!   single-core CI runner a mutex is almost never contended (the
//!   holder keeps re-acquiring within its timeslice), so wall numbers
//!   there say nothing about lock queueing.
//! * **modeled** — the Amdahl saturation bound computed from *measured*
//!   single-threaded costs: `min(threads / t_op, 1 / t_serial)`, where
//!   `t_serial` is the per-op time that must serialize through a shared
//!   lock. For the single-mutex baseline the whole intern body runs
//!   under the one lock, so its saturation is capped at `1 / t_cs`
//!   regardless of thread count; for the sharded arena only the
//!   busiest shard's lock time serializes, and thread-local cache hits
//!   serialize nothing.
//!
//! The regression gate asserts on the modeled ratio: it is the number
//! that predicts cluster behaviour, and it is measurable anywhere.

use crate::arena::{FxBuild, Node};
use crate::var::{Var, VecKind};
use crate::{Formula, FormulaId};
use parbox_xml::FragmentId;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Single-mutex baseline (seed-arena replica)
// ---------------------------------------------------------------------------

/// The pre-sharding arena: one growable node table plus intern map, all
/// behind one lock. Ids are local to the instance.
struct SeedInner {
    nodes: Vec<Node>,
    size: Vec<u64>,
    has_vars: Vec<bool>,
    intern: HashMap<Node, u32, FxBuild>,
}

impl SeedInner {
    fn new() -> SeedInner {
        let mut inner = SeedInner {
            nodes: Vec::new(),
            size: Vec::new(),
            has_vars: Vec::new(),
            intern: HashMap::default(),
        };
        // Constants at ids 0/1, like the seed arena.
        inner.intern(Node::Const(false), 1, false);
        inner.intern(Node::Const(true), 1, false);
        inner
    }

    fn intern(&mut self, node: Node, size: u64, has_vars: bool) -> u32 {
        if let Some(&id) = self.intern.get(&node) {
            return id;
        }
        let id = u32::try_from(self.nodes.len()).expect("baseline arena overflow");
        self.nodes.push(node.clone());
        self.size.push(size);
        self.has_vars.push(has_vars);
        self.intern.insert(node, id);
        id
    }

    fn mk_var(&mut self, v: Var) -> u32 {
        self.intern(Node::Var(v), 1, true)
    }

    fn mk_not(&mut self, a: u32) -> u32 {
        match self.nodes[a as usize].clone() {
            Node::Const(b) => u32::from(!b),
            Node::Not(inner) => inner.0,
            _ => {
                let size = self.size[a as usize].saturating_add(1);
                let hv = self.has_vars[a as usize];
                self.intern(Node::Not(FormulaId(a)), size, hv)
            }
        }
    }

    fn mk_nary(&mut self, conj: bool, ops: &[u32]) -> u32 {
        let (absorbing, neutral) = if conj { (0u32, 1u32) } else { (1u32, 0u32) };
        let mut out: Vec<u32> = Vec::new();
        for &id in ops {
            if id == absorbing {
                return absorbing;
            }
            if id == neutral {
                continue;
            }
            match &self.nodes[id as usize] {
                Node::And(xs) if conj => out.extend(xs.iter().map(|x| x.0)),
                Node::Or(xs) if !conj => out.extend(xs.iter().map(|x| x.0)),
                _ => out.push(id),
            }
        }
        out.sort_unstable();
        out.dedup();
        match out.len() {
            0 => neutral,
            1 => out[0],
            _ => {
                let size = out
                    .iter()
                    .fold(1u64, |acc, &i| acc.saturating_add(self.size[i as usize]));
                let hv = out.iter().any(|&i| self.has_vars[i as usize]);
                let xs: Arc<[FormulaId]> = out.into_iter().map(FormulaId).collect();
                let node = if conj { Node::And(xs) } else { Node::Or(xs) };
                self.intern(node, size, hv)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Interning backends
// ---------------------------------------------------------------------------

/// An interning backend the workload can drive. Ids are opaque `u32`s;
/// for the sharded arena they are raw [`FormulaId`]s, for the baseline
/// they are instance-local indices — the driver only feeds them back.
trait Intern {
    fn var(&self, v: Var) -> u32;
    fn not(&self, f: u32) -> u32;
    fn nary(&self, conj: bool, ops: &[u32]) -> u32;
}

/// The production arena behind the ordinary [`Formula`] constructors.
struct Sharded;

impl Intern for Sharded {
    fn var(&self, v: Var) -> u32 {
        Formula::var(v).id().0
    }

    fn not(&self, f: u32) -> u32 {
        // Safe: the driver only feeds back ids this impl produced.
        crate::arena::mk_not(FormulaId(f)).0
    }

    fn nary(&self, conj: bool, ops: &[u32]) -> u32 {
        crate::arena::mk_nary(conj, ops.iter().map(|&x| FormulaId(x))).0
    }
}

/// The seed replica: every operation takes the one mutex for its whole
/// body — exactly the pre-sharding arena's locking discipline.
struct SingleLock(Mutex<SeedInner>);

impl Intern for SingleLock {
    fn var(&self, v: Var) -> u32 {
        self.0.lock().unwrap().mk_var(v)
    }

    fn not(&self, f: u32) -> u32 {
        self.0.lock().unwrap().mk_not(f)
    }

    fn nary(&self, conj: bool, ops: &[u32]) -> u32 {
        self.0.lock().unwrap().mk_nary(conj, ops)
    }
}

/// The baseline's intern body *without* the mutex: timing it isolates
/// the work done while the single lock would be held (its critical
/// section), which is what bounds the baseline's saturation.
struct Unlocked(RefCell<SeedInner>);

impl Intern for Unlocked {
    fn var(&self, v: Var) -> u32 {
        self.0.borrow_mut().mk_var(v)
    }

    fn not(&self, f: u32) -> u32 {
        self.0.borrow_mut().mk_not(f)
    }

    fn nary(&self, conj: bool, ops: &[u32]) -> u32 {
        self.0.borrow_mut().mk_nary(conj, ops)
    }
}

/// Does no interning at all — timing it isolates the driver loop's own
/// cost (RNG, ring bookkeeping), subtracted from the critical-section
/// estimate.
struct Null;

impl Intern for Null {
    fn var(&self, v: Var) -> u32 {
        v.frag.0 ^ v.sub.rotate_left(7)
    }

    fn not(&self, f: u32) -> u32 {
        f.wrapping_mul(0x9e37_79b1)
    }

    fn nary(&self, _conj: bool, ops: &[u32]) -> u32 {
        ops.iter().fold(0u32, |a, &x| a ^ x)
    }
}

// ---------------------------------------------------------------------------
// Deterministic workload
// ---------------------------------------------------------------------------

#[inline]
fn xorshift(mut s: u64) -> u64 {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    s
}

/// Distinct fragments in the hot variable working set. Small enough
/// that a serving thread re-interns the same variables constantly (as a
/// site actor re-answering a query mix does), large enough to spread
/// over every shard.
const HOT_FRAGS: u64 = 48;
/// Fragment-id offset so probe variables cannot collide with any real
/// experiment's fragments in the process-wide arena.
const FRAG_BASE: u32 = 0x00C0_0000;

/// Runs `ops` intern operations against `arena`; returns an id checksum
/// (fed to [`std::hint::black_box`] by the caller so the loop cannot be
/// optimized away). Deterministic per `(thread id, ops)`.
fn drive<A: Intern>(arena: &A, tid: u64, ops: u64) -> u64 {
    let mut state = tid.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    // Ring of recently produced ids, seeded with working-set variables.
    let mut ring: [u32; 16] = std::array::from_fn(|i| {
        arena.var(Var::new(FragmentId(FRAG_BASE + i as u32), VecKind::V, 0))
    });
    let mut sink = 0u64;
    let mut scratch: Vec<u32> = Vec::with_capacity(8);
    for _ in 0..ops {
        state = xorshift(state);
        let roll = state % 100;
        let id = if roll < 60 {
            // Hot path: re-intern a working-set variable (thread-local
            // cache hit on the sharded arena; full lock on the baseline).
            let frag = FRAG_BASE + ((state >> 8) % HOT_FRAGS) as u32;
            let kind = match (state >> 16) % 3 {
                0 => VecKind::V,
                1 => VecKind::CV,
                _ => VecKind::DV,
            };
            let idx = ((state >> 24) % 4) as u32;
            arena.var(Var::new(FragmentId(frag), kind, idx))
        } else if roll < 75 {
            arena.not(ring[((state >> 32) % 16) as usize])
        } else {
            // N-ary structure over recent ids — mostly repeats after the
            // first round (steady-state serving), occasionally fresh.
            let k = 2 + ((state >> 40) % 6) as usize;
            let start = ((state >> 48) % 16) as usize;
            scratch.clear();
            scratch.extend((0..k).map(|j| ring[(start + j) % 16]));
            arena.nary(roll < 90, &scratch)
        };
        ring[(state % 16) as usize] = id;
        sink ^= u64::from(id).rotate_left((state % 63) as u32);
    }
    sink
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// Wall-clock aggregate ops/sec of `threads` workers hammering `arena`
/// (start barrier to last join).
fn measure_wall<A: Intern + Sync>(arena: &A, threads: usize, ops_per_thread: u64) -> f64 {
    let gate = Barrier::new(threads + 1);
    let mut elapsed = 0.0f64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let gate = &gate;
                scope.spawn(move || {
                    gate.wait();
                    std::hint::black_box(drive(arena, t as u64 + 1, ops_per_thread))
                })
            })
            .collect();
        gate.wait();
        let start = Instant::now();
        for h in handles {
            let _ = h.join().expect("probe thread panicked");
        }
        elapsed = start.elapsed().as_secs_f64();
    });
    (threads as u64 * ops_per_thread) as f64 / elapsed.max(1e-9)
}

/// Mean ns/op of one warm pass over the workload (a first pass runs
/// unmeasured, so both arenas are measured in steady state — intern
/// maps and thread-local caches populated, as in a resident server).
fn measure_single<A: Intern>(arena: &A, ops: u64) -> f64 {
    std::hint::black_box(drive(arena, 1, ops));
    let start = Instant::now();
    std::hint::black_box(drive(arena, 1, ops));
    start.elapsed().as_secs_f64() * 1e9 / ops as f64
}

/// Measured profile of one arena under the probe workload.
#[derive(Debug, Clone, Copy)]
pub struct ArenaProfile {
    /// Measured aggregate ops/sec of the `threads`-thread wall-clock
    /// run. Meaningful only when the host has that many cores.
    pub wall_ops_per_sec: f64,
    /// Measured single-threaded steady-state cost, ns per intern op.
    pub ns_per_op: f64,
    /// Measured per-op time that must serialize through a shared lock
    /// (the whole intern body for the single mutex; the busiest shard's
    /// lock share for the sharded arena).
    pub serial_ns_per_op: f64,
    /// Amdahl saturation bound at the probe's thread count:
    /// `min(threads / ns_per_op, 1 / serial_ns_per_op)`.
    pub modeled_ops_per_sec: f64,
}

/// Result of one sharded-vs-single-lock contention measurement.
#[derive(Debug, Clone, Copy)]
pub struct ContentionProbe {
    /// Worker threads used by the wall runs and the model.
    pub threads: usize,
    /// Intern operations issued per thread.
    pub ops_per_thread: u64,
    /// Profile of the sharded production arena.
    pub sharded: ArenaProfile,
    /// Profile of the single-mutex seed replica.
    pub single_lock: ArenaProfile,
}

impl ContentionProbe {
    /// Modeled saturation ratio (sharded / single-lock) — the number
    /// the `expF` acceptance gate requires to be ≥ 2 at 16 threads.
    pub fn modeled_scaling(&self) -> f64 {
        self.sharded.modeled_ops_per_sec / self.single_lock.modeled_ops_per_sec.max(1e-9)
    }

    /// Wall-clock throughput ratio (sharded / single-lock); read it
    /// together with the host's core count.
    pub fn wall_scaling(&self) -> f64 {
        self.sharded.wall_ops_per_sec / self.single_lock.wall_ops_per_sec.max(1e-9)
    }
}

fn modeled(threads: usize, ns_per_op: f64, serial_ns_per_op: f64) -> f64 {
    let cpu_bound = threads as f64 / (ns_per_op.max(1e-3) / 1e9);
    let serial_bound = 1e9 / serial_ns_per_op.max(1e-3);
    cpu_bound.min(serial_bound)
}

/// Runs both probes with the identical workload and returns the pair.
///
/// Measurement plan (all inputs measured, nothing assumed):
///
/// 1. `ns_per_op` per arena — warm single-threaded pass.
/// 2. Driver-loop overhead — the same pass against a no-op backend.
/// 3. Baseline critical section `t_cs` — the same pass against the
///    seed replica *without* its mutex, minus driver overhead: the work
///    the single lock serializes. Its `serial_ns_per_op` is all of it.
/// 4. Sharded serialized time — shard-lock acquisitions are counted by
///    the arena itself ([`Formula::arena_stats`]); the busiest shard's
///    share of acquisitions times `t_cs` (a conservative overestimate:
///    a shard's critical section is a map probe, with canonicalization
///    already done outside the lock) is what same-shard ops queue on.
///    Thread-local cache hits contribute zero.
/// 5. Wall runs at `threads` for both arenas.
pub fn intern_contention_probe(threads: usize, ops_per_thread: u64) -> ContentionProbe {
    let single_ops = ops_per_thread.max(10_000);

    // (1) steady-state per-op cost.
    let baseline = SingleLock(Mutex::new(SeedInner::new()));
    let single_ns = measure_single(&baseline, single_ops);
    let stats_before = Formula::arena_stats();
    let sharded_ns = measure_single(&Sharded, single_ops);
    let stats_after = Formula::arena_stats();

    // (2) + (3) critical-section cost of the baseline.
    let driver_ns = measure_single(&Null, single_ops);
    let unlocked = Unlocked(RefCell::new(SeedInner::new()));
    let t_cs = (measure_single(&unlocked, single_ops) - driver_ns).max(1.0);

    // (4) sharded serialized share from the arena's own lock counters.
    // Concurrent arena users (other tests in the same process) can only
    // inflate these deltas — the estimate is conservative.
    let lock_delta: Vec<u64> = stats_after
        .shards
        .iter()
        .zip(stats_before.shards.iter())
        .map(|(a, b)| a.locks.saturating_sub(b.locks))
        .collect();
    let busiest = lock_delta.iter().copied().max().unwrap_or(0);
    let sharded_serial_ns = busiest as f64 / single_ops as f64 * t_cs;

    // (5) wall-clock runs.
    let single_wall = measure_wall(&baseline, threads, ops_per_thread);
    let sharded_wall = measure_wall(&Sharded, threads, ops_per_thread);

    ContentionProbe {
        threads,
        ops_per_thread,
        sharded: ArenaProfile {
            wall_ops_per_sec: sharded_wall,
            ns_per_op: sharded_ns,
            serial_ns_per_op: sharded_serial_ns,
            modeled_ops_per_sec: modeled(threads, sharded_ns, sharded_serial_ns),
        },
        single_lock: ArenaProfile {
            wall_ops_per_sec: single_wall,
            ns_per_op: single_ns,
            serial_ns_per_op: t_cs,
            modeled_ops_per_sec: modeled(threads, single_ns, t_cs),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_replica_canonicalizes_like_the_arena() {
        // The baseline must implement the same canonical form, otherwise
        // the throughput comparison is not apples-to-apples.
        let base = SingleLock(Mutex::new(SeedInner::new()));
        let v1 = base.var(Var::new(FragmentId(1), VecKind::V, 0));
        let v2 = base.var(Var::new(FragmentId(2), VecKind::V, 0));
        assert_eq!(v1, base.var(Var::new(FragmentId(1), VecKind::V, 0)));
        // Flatten + sort + dedup.
        let a = base.nary(true, &[v1, v2]);
        let b = base.nary(true, &[v2, v1, v2]);
        assert_eq!(a, b);
        let nested = base.nary(true, &[a, v1]);
        assert_eq!(nested, a, "one-level flatten + dedup");
        // Constant folding and double negation.
        assert_eq!(base.nary(true, &[v1, 0]), 0);
        assert_eq!(base.nary(false, &[v1, 0]), v1);
        assert_eq!(base.not(base.not(v1)), v1);
    }

    #[test]
    fn drive_is_deterministic_per_backend() {
        let base = SingleLock(Mutex::new(SeedInner::new()));
        let a = drive(&base, 7, 2_000);
        let again = SingleLock(Mutex::new(SeedInner::new()));
        let b = drive(&again, 7, 2_000);
        assert_eq!(a, b);
    }

    #[test]
    fn probe_reports_positive_throughput() {
        let p = intern_contention_probe(2, 2_000);
        assert!(p.sharded.wall_ops_per_sec > 0.0);
        assert!(p.single_lock.wall_ops_per_sec > 0.0);
        assert!(p.sharded.modeled_ops_per_sec > 0.0);
        assert!(p.single_lock.modeled_ops_per_sec > 0.0);
        assert!(p.modeled_scaling() > 0.0);
        assert!(p.wall_scaling() > 0.0);
    }

    #[test]
    fn single_lock_model_is_serial_bound() {
        // The baseline's saturation bound must not exceed 1/t_cs — the
        // whole point of the comparison.
        let p = intern_contention_probe(16, 4_000);
        let serial_bound = 1e9 / p.single_lock.serial_ns_per_op;
        assert!(p.single_lock.modeled_ops_per_sec <= serial_bound * 1.0001);
    }
}

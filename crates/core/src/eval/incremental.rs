//! Memoized `bottomUp` with O(depth) repair — the evaluation half of
//! delta-repair view maintenance.
//!
//! [`bottom_up`](fn@crate::eval::bottom_up) keeps only two live vector
//! triplets at a time, so after an update the whole fragment must be
//! re-evaluated. [`IncrementalBottomUp`] instead memoizes the `(V, DV)`
//! vectors of *every* node (indexed by arena slot). An in-place data
//! update (`insNode`/`delNode`) changes the child list of exactly one
//! surviving node — the *anchor* — so only the anchor, any newly
//! inserted subtree, and the root-to-anchor path have stale vectors:
//! [`IncrementalBottomUp::repair`] recomputes exactly those nodes
//! against the memoized off-path children, in `O(depth · fanout · |q|)`
//! formula interns instead of `O(|F|)`.
//!
//! Because the formula arena is hash-consed and the per-node math here
//! mirrors the [`FormulaEvaluator`](mod@crate::eval::bottom_up) operand
//! stream exactly, a repaired triplet is **id-identical** to what a
//! fresh [`bottom_up`](fn@crate::eval::bottom_up) over the updated
//! fragment would produce (asserted by the equivalence proptests) — so
//! delta repair can never drift from invalidate-and-recompute.

use parbox_bool::{Formula, Triplet};
use parbox_query::{CompiledQuery, Op, ResolvedQuery};
use parbox_xml::{NodeId, Tree};

/// Per-node memoized vectors. `CV` is not stored: it is only read at the
/// node itself (`Op::Child`), never by the parent, and is rebuilt from
/// the children's `V` whenever the node is recomputed.
#[derive(Debug, Clone)]
struct NodeVectors {
    v: Vec<Formula>,
    dv: Vec<Formula>,
}

/// Result of one O(depth) repair pass.
#[derive(Debug, Clone)]
pub struct RepairRun {
    /// The fragment-root triplet after the repair.
    pub triplet: Triplet,
    /// Nodes whose vectors were recomputed (path + inserted subtree).
    pub nodes_recomputed: u64,
    /// Work units on the same scale as
    /// [`FragmentRun`](crate::eval::FragmentRun): `nodes × |QList|`.
    pub work_units: u64,
}

/// The cached `bottomUp` evaluation of one `(fragment, query)` pair,
/// repairable in place after data updates.
#[derive(Debug, Clone)]
pub struct IncrementalBottomUp {
    q: CompiledQuery,
    m: usize,
    /// One entry per arena slot; `None` for slots never evaluated (new
    /// nodes before repair) — tombstoned slots keep their last value but
    /// are unreachable from live child lists.
    memo: Vec<Option<NodeVectors>>,
    root: Triplet,
}

impl IncrementalBottomUp {
    /// Evaluates `q` over the fragment, memoizing every node. Returns the
    /// state and the work spent (`live nodes × |QList|`).
    ///
    /// The initial build runs the formula path at every node (the spine
    /// fast path cannot be used — it leaves no per-node state), so it
    /// costs a small constant factor over
    /// [`bottom_up`](fn@crate::eval::bottom_up); the price is paid once per
    /// cache fill and buys O(depth) updates thereafter.
    pub fn build(tree: &Tree, q: &CompiledQuery) -> (IncrementalBottomUp, u64) {
        let resolved = q.resolve(tree.labels());
        let m = resolved.len();
        let mut memo: Vec<Option<NodeVectors>> = vec![None; tree.arena_len()];
        let mut nodes = 0u64;
        let root_id = tree.root();
        let mut root_vectors = None;
        for n in tree.postorder(root_id) {
            let (v, cv, dv) = compute_node(tree, &resolved, m, &memo, n);
            nodes += 1;
            if n == root_id {
                root_vectors = Some((v.clone(), cv, dv.clone()));
            }
            memo[n.index()] = Some(NodeVectors { v, dv });
        }
        let (v, cv, dv) = root_vectors.expect("postorder visits the root");
        let state = IncrementalBottomUp {
            q: q.clone(),
            m,
            memo,
            root: Triplet { v, cv, dv },
        };
        (state, nodes * m as u64)
    }

    /// The current fragment-root triplet.
    pub fn triplet(&self) -> &Triplet {
        &self.root
    }

    /// The query this state was built for.
    pub fn query(&self) -> &CompiledQuery {
        &self.q
    }

    /// Repairs the cached evaluation after an in-place data update whose
    /// deepest surviving changed node is `anchor` (the parent of an
    /// inserted or deleted subtree). Children of path nodes that have no
    /// memo entry — freshly inserted subtrees — are evaluated bottom-up
    /// first; everything off the root-to-anchor path is reused as is.
    pub fn repair(&mut self, tree: &Tree, anchor: NodeId) -> RepairRun {
        // Re-resolve: an insert may have interned a label the query
        // mentions but the fragment had never seen. Off-path memo entries
        // stay valid — their nodes' labels are unchanged and distinct
        // from any newly interned label, so their `LabelIs` constants are
        // unaffected by the table growth.
        let resolved = self.q.resolve(tree.labels());
        let m = self.m;
        if self.memo.len() < tree.arena_len() {
            self.memo.resize(tree.arena_len(), None);
        }
        let mut nodes = 0u64;
        let mut path: Vec<NodeId> = vec![anchor];
        path.extend(tree.ancestors(anchor));
        let root_id = tree.root();
        debug_assert_eq!(*path.last().expect("non-empty"), root_id);
        let mut root_vectors = None;
        for &p in &path {
            // Evaluate any never-seen children (inserted subtrees) first.
            let kids: Vec<NodeId> = tree.node(p).child_ids().to_vec();
            for c in kids {
                if self.memo[c.index()].is_none() {
                    for n in tree.postorder(c) {
                        let (v, _cv, dv) = compute_node(tree, &resolved, m, &self.memo, n);
                        nodes += 1;
                        self.memo[n.index()] = Some(NodeVectors { v, dv });
                    }
                }
            }
            let (v, cv, dv) = compute_node(tree, &resolved, m, &self.memo, p);
            nodes += 1;
            if p == root_id {
                root_vectors = Some((v.clone(), cv, dv.clone()));
            }
            self.memo[p.index()] = Some(NodeVectors { v, dv });
        }
        let (v, cv, dv) = root_vectors.expect("path ends at the root");
        self.root = Triplet { v, cv, dv };
        RepairRun {
            triplet: self.root.clone(),
            nodes_recomputed: nodes,
            work_units: nodes * m as u64,
        }
    }
}

/// One node of the paper's Fig. 3(b) case analysis, fed from memoized
/// children. The operand streams (child order, `false` operands skipped)
/// match [`FormulaEvaluator`](mod@crate::eval::bottom_up) exactly, so the
/// interned formulas — and with them the triplets — come out identical.
fn compute_node(
    tree: &Tree,
    q: &ResolvedQuery,
    m: usize,
    memo: &[Option<NodeVectors>],
    n: NodeId,
) -> (Vec<Formula>, Vec<Formula>, Vec<Formula>) {
    let node = tree.node(n);
    if let Some(frag) = node.kind.fragment() {
        let t = Triplet::fresh_vars(frag, m);
        return (t.v, t.cv, t.dv);
    }
    let mut cv_ops: Vec<Vec<Formula>> = vec![Vec::new(); m];
    let mut dv_ops: Vec<Vec<Formula>> = vec![Vec::new(); m];
    for &c in node.child_ids() {
        let cm = memo[c.index()]
            .as_ref()
            .expect("children evaluated before parents");
        for i in 0..m {
            if cm.v[i] != Formula::FALSE {
                cv_ops[i].push(cm.v[i]);
            }
            if cm.dv[i] != Formula::FALSE {
                dv_ops[i].push(cm.dv[i]);
            }
        }
    }
    let cv: Vec<Formula> = cv_ops.into_iter().map(Formula::any).collect();
    let mut dv: Vec<Formula> = Vec::with_capacity(m);
    let mut v: Vec<Formula> = Vec::with_capacity(m);
    for (i, op) in q.ops.iter().enumerate() {
        let value = match op {
            Op::True => Formula::TRUE,
            Op::LabelIs(l) => Formula::constant(Some(node.label) == *l),
            Op::TextIs(s) => Formula::constant(node.text.as_deref() == Some(s.as_ref())),
            Op::Child(j) => cv[*j as usize],
            Op::Desc(j) => dv[*j as usize],
            Op::Or(a, b) => Formula::or(v[*a as usize], v[*b as usize]),
            Op::And(a, b) => Formula::and(v[*a as usize], v[*b as usize]),
            Op::Not(a) => v[*a as usize].not(),
        };
        dv.push(Formula::any(
            dv_ops[i].iter().copied().chain(std::iter::once(value)),
        ));
        v.push(value);
    }
    (v, cv, dv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::bottom_up;
    use parbox_query::{compile, parse_query};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn compiled(q: &str) -> CompiledQuery {
        compile(&parse_query(q).unwrap())
    }

    #[test]
    fn build_matches_bottom_up_exactly() {
        for (xml, q) in [
            ("<a><b><c>x</c></b><d/></a>", "[//c = \"x\" and //d]"),
            (r#"<a><b/><parbox:virtual ref="2"/></a>"#, "[//b[c]]"),
            ("<r><s><t/></s></r>", "[not //q or //t]"),
        ] {
            let tree = Tree::parse(xml).unwrap();
            let cq = compiled(q);
            let (state, work) = IncrementalBottomUp::build(&tree, &cq);
            let run = bottom_up(&tree, &cq);
            assert_eq!(state.triplet(), &run.triplet, "on {xml} {q}");
            assert_eq!(work, run.work_units);
        }
    }

    #[test]
    fn insert_repair_matches_recompute() {
        let mut tree = Tree::parse("<r><a><x>1</x></a><b/></r>").unwrap();
        let cq = compiled("[//goal or //x = \"1\"]");
        let (mut state, _) = IncrementalBottomUp::build(&tree, &cq);
        let a = tree
            .descendants(tree.root())
            .find(|&n| tree.label_str(n) == "a")
            .unwrap();
        tree.add_child(a, "goal");
        let run = state.repair(&tree, a);
        assert_eq!(run.triplet, bottom_up(&tree, &cq).triplet);
        // Path (a, r) + the inserted leaf: three nodes, not the tree.
        assert_eq!(run.nodes_recomputed, 3);
    }

    #[test]
    fn delete_repair_matches_recompute() {
        let mut tree = Tree::parse("<r><a><x>1</x><pad/></a><b/></r>").unwrap();
        let cq = compiled("[//x = \"1\"]");
        let (mut state, _) = IncrementalBottomUp::build(&tree, &cq);
        let x = tree
            .descendants(tree.root())
            .find(|&n| tree.label_str(n) == "x")
            .unwrap();
        let anchor = tree.ancestors(x).next().unwrap();
        tree.remove_subtree(x).unwrap();
        let run = state.repair(&tree, anchor);
        assert_eq!(run.triplet, bottom_up(&tree, &cq).triplet);
        assert!(!run.triplet.resolved().unwrap().v[cq.root() as usize]);
    }

    #[test]
    fn repair_handles_new_query_labels() {
        // The inserted label is mentioned by the query but absent from
        // the document at build time: repair must re-resolve.
        let mut tree = Tree::parse("<r><a/></r>").unwrap();
        let cq = compiled("[//unseen]");
        let (mut state, _) = IncrementalBottomUp::build(&tree, &cq);
        assert!(!state.triplet().resolved().unwrap().v[cq.root() as usize]);
        let a = tree
            .descendants(tree.root())
            .find(|&n| tree.label_str(n) == "a")
            .unwrap();
        tree.add_child(a, "unseen");
        let run = state.repair(&tree, a);
        assert_eq!(run.triplet, bottom_up(&tree, &cq).triplet);
        assert!(run.triplet.resolved().unwrap().v[cq.root() as usize]);
    }

    #[test]
    fn random_update_schedule_never_drifts() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut tree =
            Tree::parse(r#"<r><a><x>1</x><pad/></a><b><parbox:virtual ref="3"/></b></r>"#).unwrap();
        let cq = compiled("[//x = \"1\" or //goal and not //pad]");
        let (mut state, _) = IncrementalBottomUp::build(&tree, &cq);
        for step in 0..60 {
            let nodes: Vec<NodeId> = tree
                .descendants(tree.root())
                .filter(|&n| !tree.node(n).kind.is_virtual())
                .collect();
            let node = nodes[rng.random_range(0..nodes.len())];
            let anchor = if rng.random_bool(0.7) || node == tree.root() {
                let label = ["goal", "pad", "x"][rng.random_range(0..3usize)];
                tree.add_child(node, label);
                node
            } else {
                let parent = tree.ancestors(node).next().unwrap();
                if !tree.virtual_nodes(node).is_empty() {
                    continue;
                }
                tree.remove_subtree(node).unwrap();
                parent
            };
            let run = state.repair(&tree, anchor);
            assert_eq!(
                run.triplet,
                bottom_up(&tree, &cq).triplet,
                "drift at step {step}"
            );
        }
    }
}

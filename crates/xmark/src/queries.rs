//! XBL query workload generator.
//!
//! The paper's experiments sweep the query size `|QList(q)|` over
//! {2, 8, 15, 23}. [`query_with_qlist`] builds a query whose compiled
//! sub-query list has *exactly* a requested size, by composing
//! conjuncts with known `|QList|` increments over a label vocabulary.

use parbox_query::{compile, CompiledQuery, Path, Query};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Default label vocabulary: XMark element names that occur in any
/// generated document, so structural conjuncts are satisfiable.
pub const XMARK_VOCAB: [&str; 8] = [
    "item", "name", "person", "bidder", "price", "quantity", "payment", "category",
];

/// Builds a query with `|QList(q)| == target` (`target ≥ 2`) over the
/// given vocabulary. Deterministic under `seed`.
///
/// Construction: a base path conjunct plus extensions with fixed
/// increments — `∧ //L` adds 4 distinct sub-queries (`label`, `*/·`,
/// `//·`, `∧`), `∧ L` adds 3, `∧ text()="s"` adds 2 — so any target ≥ 2
/// is reachable exactly.
///
/// ```
/// use parbox_xmark::query_with_qlist;
/// for t in [2, 8, 15, 23] {
///     let (q, compiled) = query_with_qlist(t, 1);
///     assert_eq!(compiled.len(), t, "query {q}");
/// }
/// ```
pub fn query_with_qlist(target: usize, seed: u64) -> (Query, CompiledQuery) {
    assert!(target >= 2, "|QList| of any label query is at least 2");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fresh = {
        let mut counter = 0usize;
        let offset = rng.random_range(0..XMARK_VOCAB.len());
        move || {
            let w = XMARK_VOCAB[(offset + counter) % XMARK_VOCAB.len()];
            counter += 1;
            // A numbered suffix keeps every conjunct's labels distinct so
            // hash-consing never shrinks the program below target.
            format!("{w}{counter}")
        }
    };

    // Base: [L] = 2 or [//L] = 3, chosen to make the remainder reachable
    // with +2/+3/+4 steps (every remainder ≥ 2 is, and 0 trivially).
    let mut remaining = target;
    let mut q = if remaining % 2 == 1 {
        remaining -= 3;
        Query::Path(Path::empty().desc().child(&fresh()))
    } else {
        remaining -= 2;
        Query::Path(Path::empty().child(&fresh()))
    };
    while remaining > 0 {
        // Prefer structural conjuncts (`∧ L` costs 3, `∧ //L` costs 4):
        // they keep the query's truth dependent on the whole document, so
        // lazy/partial evaluation is exercised honestly. The 2-cost
        // `text() = s` conjunct — whose value is fixed at the context
        // root — is only used for the unreachable remainders 2 and 5.
        let step = match remaining % 3 {
            0 => 3,
            1 => 4,
            _ if remaining == 2 => 2,
            _ if remaining == 5 => 3, // leaves 2 for the text conjunct
            _ => 4,                   // 8, 11, … → 4 then 4/3s
        };
        let conjunct = match step {
            2 => Query::TextEq(Path::empty(), fresh()),
            3 => Query::Path(Path::empty().child(&fresh())),
            _ => Query::Path(Path::empty().desc().child(&fresh())),
        };
        q = q.and(conjunct);
        remaining -= step;
    }
    let compiled = compile(&q);
    debug_assert_eq!(compiled.len(), target, "generator drifted for {q}");
    (q, compiled)
}

/// One conjunct of the shared pool behind [`batch_workload`]: `//L` or
/// `*/L` over the XMark vocabulary, so distinct queries overlap.
fn pool_conjunct(i: usize) -> Query {
    let label = XMARK_VOCAB[(i / 2) % XMARK_VOCAB.len()];
    let path = if i.is_multiple_of(2) {
        Path::empty().desc().child(label)
    } else {
        Path::empty().child(label)
    };
    Query::Path(path)
}

/// A serving-traffic workload: `n` concurrent queries, each a conjunction
/// of 2–4 conjuncts drawn from a *shared pool* of `2 × |XMARK_VOCAB|`
/// path predicates. Deterministic under `seed`.
///
/// Concurrent queries from many users overlap heavily in practice (the
/// same hot predicates recur across requests); drawing conjuncts from a
/// common pool reproduces that shape, so the batch compiler's cross-query
/// deduplication has something realistic to merge:
///
/// ```
/// use parbox_query::{compile, compile_batch};
/// use parbox_xmark::batch_workload;
///
/// let queries = batch_workload(32, 42);
/// let merged = compile_batch(&queries).merged_len();
/// let summed: usize = queries.iter().map(|q| compile(q).len()).sum();
/// assert!(merged < summed / 2, "merged {merged} vs summed {summed}");
/// ```
pub fn batch_workload(n: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = 2 * XMARK_VOCAB.len();
    (0..n)
        .map(|_| {
            let conjuncts = rng.random_range(2..5usize);
            let mut q = pool_conjunct(rng.random_range(0..pool));
            for _ in 1..conjuncts {
                q = q.and(pool_conjunct(rng.random_range(0..pool)));
            }
            q
        })
        .collect()
}

/// A *heterogeneous* serving workload: a mix of tiny selective queries
/// (2–4 sub-queries probing one label or text value — the kind a hot
/// dashboard repeats) and large scan-heavy queries (15–23 sub-queries
/// conjoining structure across the whole document). Roughly 70% tiny /
/// 30% scan-heavy, deterministic under `seed`.
///
/// This is the workload whose *per-query* best strategy varies — tiny
/// selective queries often resolve from shallow fragments while
/// scan-heavy conjunctions need everything — which is what the
/// `expE_planner` experiment and the serve suite's planner proptests
/// drive through the adaptive engine (over skewed fragment sizes, e.g.
/// the FT3 shape).
pub fn heterogeneous_workload(n: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = 2 * XMARK_VOCAB.len();
    (0..n)
        .map(|_| {
            if rng.random_bool(0.7) {
                // Tiny and selective: one or two pooled predicates,
                // sometimes sharpened by a text probe.
                let mut q = pool_conjunct(rng.random_range(0..pool));
                if rng.random_bool(0.4) {
                    let label = XMARK_VOCAB[rng.random_range(0..XMARK_VOCAB.len())];
                    q = q.and(Query::TextEq(
                        Path::empty().desc().child(label),
                        format!("v{}", rng.random_range(0..50u32)),
                    ));
                }
                q
            } else {
                // Scan-heavy: a full-size conjunction from the paper's
                // upper sweep sizes.
                let size = [15usize, 23][rng.random_range(0..2usize)];
                query_with_qlist(size, rng.next_u64()).0
            }
        })
        .collect()
}

/// A batch of queries for the paper's standard sweep sizes.
pub fn standard_sweep(seed: u64) -> Vec<(usize, Query, CompiledQuery)> {
    [2usize, 8, 15, 23]
        .into_iter()
        .map(|t| {
            let (q, c) = query_with_qlist(t, seed ^ t as u64);
            (t, q, c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_sizes_for_paper_sweep() {
        for t in [2usize, 8, 15, 23] {
            let (q, c) = query_with_qlist(t, 99);
            assert_eq!(c.len(), t, "target {t} produced {} for {q}", c.len());
        }
    }

    #[test]
    fn every_size_up_to_forty_is_exact() {
        for t in 2..=40usize {
            let (q, c) = query_with_qlist(t, t as u64);
            assert_eq!(c.len(), t, "target {t} produced {} for {q}", c.len());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (a, _) = query_with_qlist(15, 5);
        let (b, _) = query_with_qlist(15, 5);
        let (c, _) = query_with_qlist(15, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn batch_workload_is_deterministic_and_sized() {
        let a = batch_workload(16, 3);
        let b = batch_workload(16, 3);
        let c = batch_workload(16, 4);
        assert_eq!(a.len(), 16);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn batch_workload_queries_compile_and_overlap() {
        let queries = batch_workload(32, 7);
        let batch = parbox_query::compile_batch(&queries);
        let summed: usize = queries.iter().map(|q| compile(q).len()).sum();
        // The shared pool bounds the merged program by the pool's distinct
        // sub-queries plus the conjunction nodes, far below the sum.
        assert!(
            batch.merged_len() * 2 < summed,
            "merged {} vs summed {summed}",
            batch.merged_len()
        );
    }

    #[test]
    fn heterogeneous_workload_mixes_tiny_and_scan_heavy() {
        let queries = heterogeneous_workload(200, 5);
        assert_eq!(queries.len(), 200);
        let sizes: Vec<usize> = queries.iter().map(|q| compile(q).len()).collect();
        let tiny = sizes.iter().filter(|&&s| s <= 8).count();
        let heavy = sizes.iter().filter(|&&s| s >= 15).count();
        assert!(tiny > 100, "tiny queries dominate: {tiny}");
        assert!(heavy > 30, "scan-heavy queries present: {heavy}");
        // Deterministic under seed, distinct across seeds.
        assert_eq!(heterogeneous_workload(200, 5), queries);
        assert_ne!(heterogeneous_workload(200, 6), queries);
    }

    #[test]
    fn standard_sweep_has_four_sizes() {
        let sweep = standard_sweep(1);
        let sizes: Vec<usize> = sweep.iter().map(|(t, _, _)| *t).collect();
        assert_eq!(sizes, vec![2, 8, 15, 23]);
        for (t, _, c) in &sweep {
            assert_eq!(c.len(), *t);
        }
    }
}

//! Boolean variables introduced at virtual nodes.
//!
//! During partial evaluation, the values of the sub-queries at a virtual
//! node (the root of sub-fragment `F_k` stored elsewhere) are unknown.
//! Procedure `bottomUp` introduces one variable per sub-query per vector:
//! the paper's `x_i`, `cx_i` and `dx_i` (Example 3.1). A variable is
//! therefore fully identified by *(fragment, vector, sub-query index)*.

use parbox_xml::FragmentId;
use std::fmt;

/// Which of the three vectors of a triplet a variable refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VecKind {
    /// `V` — value of the sub-query at the fragment root (paper's `x`).
    V,
    /// `CV` — true iff the sub-query holds at some *child* of the fragment
    /// root (paper's `cx`).
    CV,
    /// `DV` — true iff the sub-query holds at the fragment root or some
    /// descendant (paper's `dx`).
    DV,
}

impl VecKind {
    /// All vector kinds, in `(V, CV, DV)` order.
    pub const ALL: [VecKind; 3] = [VecKind::V, VecKind::CV, VecKind::DV];
}

/// A Boolean variable standing for one unknown triplet entry of a
/// sub-fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var {
    /// The sub-fragment whose value is unknown.
    pub frag: FragmentId,
    /// Which vector of the sub-fragment's triplet.
    pub vec: VecKind,
    /// Index of the sub-query in `QList(q)`.
    pub sub: u32,
}

impl Var {
    /// Convenience constructor.
    #[inline]
    pub fn new(frag: FragmentId, vec: VecKind, sub: u32) -> Self {
        Var { frag, vec, sub }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Matches the paper's notation: x / cx / dx subscripted by the
        // sub-query, superscripted (here: suffixed) by the fragment.
        let prefix = match self.vec {
            VecKind::V => "x",
            VecKind::CV => "cx",
            VecKind::DV => "dx",
        };
        write!(f, "{prefix}{}@{}", self.sub + 1, self.frag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        let v = Var::new(FragmentId(2), VecKind::DV, 7);
        assert_eq!(v.to_string(), "dx8@F2");
        let v = Var::new(FragmentId(0), VecKind::V, 0);
        assert_eq!(v.to_string(), "x1@F0");
    }

    #[test]
    fn ordering_groups_by_fragment() {
        let a = Var::new(FragmentId(1), VecKind::DV, 9);
        let b = Var::new(FragmentId(2), VecKind::V, 0);
        assert!(a < b);
    }

    #[test]
    fn all_kinds_enumerated() {
        assert_eq!(VecKind::ALL.len(), 3);
        assert_eq!(VecKind::ALL[0], VecKind::V);
    }
}

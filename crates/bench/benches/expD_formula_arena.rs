//! Criterion bench for Experiment D: the formula-path kernel — wide
//! fan-out `bottomUp` plus the coordinator solve — through the
//! hash-consed arena vs the preserved seed tree representation, and the
//! two triplet wire codecs.

// The experiment is named expD in the issue tracker; keep the bench name.
#![allow(non_snake_case)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parbox_bench::{ft1, Scale};
use parbox_bool::reference::{ref_solve, RefTriplet};
use parbox_bool::{triplet_dag_wire_size, triplet_wire_size, EquationSystem};
use parbox_core::{bottom_up, bottom_up_reference};
use parbox_xml::FragmentId;
use std::collections::HashMap;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let fragments = 256usize;
    let scale = Scale {
        corpus_bytes: fragments * 1024,
        seed: 2006,
    };
    let (forest, _) = ft1(scale, fragments);
    let (_, q) = parbox_xmark::query_with_qlist(8, scale.seed);
    let order = forest.postorder();

    let mut group = c.benchmark_group("expD");
    group.sample_size(10);

    group.bench_with_input(
        BenchmarkId::new("arena_bottom_up_star", fragments),
        &fragments,
        |b, _| {
            b.iter(|| {
                let mut sys = EquationSystem::new();
                for f in forest.fragment_ids() {
                    sys.insert(f, bottom_up(&forest.fragment(f).tree, &q).triplet);
                }
                black_box(sys.solve(&order).unwrap().len())
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::new("seed_bottom_up_star", fragments),
        &fragments,
        |b, _| {
            b.iter(|| {
                let mut triplets: HashMap<FragmentId, RefTriplet> = HashMap::new();
                for f in forest.fragment_ids() {
                    triplets.insert(f, bottom_up_reference(&forest.fragment(f).tree, &q).triplet);
                }
                black_box(ref_solve(&triplets, &order).unwrap().len())
            })
        },
    );

    // Memoized repeat solve (the serving engine's hot path) vs seed.
    let sys = {
        let mut sys = EquationSystem::new();
        for f in forest.fragment_ids() {
            sys.insert(f, bottom_up(&forest.fragment(f).tree, &q).triplet);
        }
        sys
    };
    group.bench_function("arena_repeat_solve", |b| {
        b.iter(|| black_box(sys.solve(&order).unwrap().len()))
    });
    let seed_triplets: HashMap<FragmentId, RefTriplet> = forest
        .fragment_ids()
        .map(|f| (f, bottom_up_reference(&forest.fragment(f).tree, &q).triplet))
        .collect();
    group.bench_function("seed_repeat_solve", |b| {
        b.iter(|| black_box(ref_solve(&seed_triplets, &order).unwrap().len()))
    });

    // Wire codecs over the star hub's (widest) triplet.
    let hub = sys.get(forest.root_fragment()).unwrap().clone();
    group.bench_function("triplet_encode_tree", |b| {
        b.iter(|| black_box(triplet_wire_size(&hub)))
    });
    group.bench_function("triplet_encode_dag", |b| {
        b.iter(|| black_box(triplet_dag_wire_size(&hub)))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

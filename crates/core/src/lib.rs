#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

//! # parbox-core
//!
//! The algorithms of *Using Partial Evaluation in Distributed Query
//! Evaluation* (Buneman, Cong, Fan, Kementsietsidis — VLDB 2006):
//!
//! * [`centralized_eval`] — the optimal `O(|T||q|)` single-traversal
//!   baseline (Section 2.2);
//! * [`naive_centralized`] / [`naive_distributed`] — the two naive
//!   distributed baselines (Section 3);
//! * [`parbox`] — the **ParBoX** partial-evaluation algorithm (Fig. 3);
//! * [`full_dist_parbox`], [`lazy_parbox`] — its variants (Section 4);
//! * [`plan`] — the **cost-based planner**: all strategies behind the
//!   [`Executor`] trait, with statistics-driven selection
//!   ([`Planner::choose`], [`plan_run`]) replacing the hand-written
//!   `HybridParBoX` tipping point;
//! * [`MaterializedView`] — incremental maintenance of Boolean XPath
//!   views under data and fragmentation updates (Section 5);
//! * [`run_batch`] — the **batch engine**: a whole batch of concurrent
//!   queries evaluated in one ParBoX round (one visit per site, one
//!   traversal per fragment, one solver pass);
//! * [`Engine`] — the **resident serving engine** ([`serve`]): an owned,
//!   long-lived deployment with persistent site workers, two-level
//!   triplet caching and update routing, for query/update *streams*.
//!
//! Every algorithm takes a [`parbox_net::Cluster`] (fragmented document +
//! placement + network model) and a compiled query, and returns the
//! Boolean answer with a full [`parbox_net::RunReport`] of visits,
//! messages and work — the paper's guarantees are assertions over these
//! reports.
//!
//! ```
//! use parbox_core::{parbox, run_batch};
//! use parbox_frag::{Forest, Placement};
//! use parbox_net::{Cluster, NetworkModel};
//! use parbox_query::{compile, compile_batch, parse_query};
//! use parbox_xml::Tree;
//!
//! // Fragment a document over two sites…
//! let tree = Tree::parse("<r><x><A/></x><y><B/></y></r>").unwrap();
//! let mut forest = Forest::from_tree(tree);
//! let f0 = forest.root_fragment();
//! let y = {
//!     let t = &forest.fragment(f0).tree;
//!     t.descendants(t.root()).find(|&n| t.label_str(n) == "y").unwrap()
//! };
//! forest.split(f0, y).unwrap();
//! let placement = Placement::one_per_fragment(&forest);
//! let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
//!
//! // …one query through ParBoX: each site is visited exactly once.
//! let q = compile(&parse_query("[//A and //B]").unwrap());
//! let out = parbox(&cluster, &q);
//! assert!(out.answer);
//! assert_eq!(out.report.max_visits(), 1);
//!
//! // …and a whole batch through the batch engine: still one visit.
//! let queries: Vec<_> = ["[//A]", "[//B]", "[//A and not //B]"]
//!     .iter().map(|s| parse_query(s).unwrap()).collect();
//! let batch = run_batch(&cluster, &compile_batch(&queries));
//! assert_eq!(batch.answers, vec![true, true, false]);
//! assert_eq!(batch.report.max_visits(), 1);
//! ```

pub mod aggregate;
pub mod algorithms;
pub mod eval;
pub mod plan;
pub mod selection;
pub mod serve;
pub mod views;

pub use aggregate::{
    count_centralized, count_distributed, sum_centralized, sum_distributed, AggregateOutcome,
};
#[allow(deprecated)] // the expA-era hybrid shim stays exported for old callers
pub use algorithms::{
    batch_query_wire_size, full_dist_parbox, hybrid_parbox, hybrid_prefers_parbox, lazy_parbox,
    naive_centralized, naive_distributed, parbox, query_wire_size, resolved_triplet_wire_size,
    run_batch, BatchOutcome, EvalOutcome,
};
pub use eval::{
    bottom_up, bottom_up_formula_only, bottom_up_reference, centralized_eval,
    centralized_eval_counted, BitSet, CentralizedRun, FragmentRun, IncrementalBottomUp,
    RefFragmentRun, RepairRun,
};
pub use plan::{
    plan_run, Choice, CostEstimate, Executor, PlanContext, PlanExplain, PlanSummary, Planner,
};
pub use selection::{select_centralized, select_distributed, SelectionOutcome};
pub use serve::{
    Completeness, Engine, EngineConfig, EngineStats, Notification, QueryOutcome, RoundOutcome,
    ShutdownReport, SubscriptionId, Ticket, UpdateOutcome,
};
pub use views::{
    apply_update_to_forest, apply_update_tracked, FragmentDelta, MaterializedView, Update,
    UpdateEffect, UpdateReport, ViewError,
};

//! Algorithm **FullDistParBoX** (paper, Section 4): ParBoX with the third
//! phase distributed over the participating sites.
//!
//! Every site holds a copy of the (small) source tree. After the parallel
//! partial-evaluation phase, resolution proceeds bottom-up *in the
//! network*: the site of a leaf fragment sends its (closed) triplet to
//! the site of the parent fragment; a site that has received the resolved
//! triplets of all sub-fragments of a local fragment runs `evalST`
//! locally and forwards the — now variable-free — triplet upward. No
//! variables ever cross the network, halving traffic in practice, at the
//! price of visiting a site once per fragment it stores.

use crate::algorithms::{query_wire_size, resolved_triplet_wire_size, EvalOutcome};
use crate::eval::bottom_up;
use parbox_bool::{Formula, ResolvedTriplet, Triplet, Var};
use parbox_net::{run_sites_parallel, Cluster, MessageKind, RunReport};
use parbox_query::CompiledQuery;
use parbox_xml::FragmentId;
use std::collections::HashMap;
use std::time::Instant;

/// Evaluates `q` with FullDistParBoX.
pub fn full_dist_parbox(cluster: &Cluster<'_>, q: &CompiledQuery) -> EvalOutcome {
    let wall = Instant::now();
    let mut report = RunReport::new();
    let coord = cluster.coordinator();
    let st = &cluster.source_tree;
    let sites = cluster.sites();
    let qsize = query_wire_size(q);

    // Stage 1: broadcast the query (and the source-tree replica).
    for &s in &sites {
        if s != coord {
            report.record_message(coord, s, qsize + st.byte_size(), MessageKind::Query);
        }
    }

    // Stage 2: parallel partial evaluation (identical to ParBoX).
    let runs = run_sites_parallel(&sites, |s| {
        cluster
            .fragments_at(s)
            .into_iter()
            .map(|f| (f, bottom_up(&cluster.forest.fragment(f).tree, q)))
            .collect::<Vec<_>>()
    });

    let mut open: HashMap<FragmentId, Triplet> = HashMap::new();
    let mut site_compute: HashMap<u32, f64> = HashMap::new();
    for run in runs {
        report.record_compute(run.site, run.elapsed);
        site_compute.insert(run.site.0, run.elapsed.as_secs_f64());
        for (frag, frun) in run.output {
            report.record_work(run.site, frun.work_units);
            open.insert(frag, frun.triplet);
        }
    }

    // Stage 3: `evalDistrST` — bottom-up resolution along the source tree.
    // A site is visited once per local fragment (Fig. 4: card(F_Si)).
    let mut resolved: HashMap<FragmentId, ResolvedTriplet> = HashMap::new();
    let mut done_at: HashMap<FragmentId, f64> = HashMap::new();
    let tri_bytes = resolved_triplet_wire_size(q.len());
    for &frag in st.postorder() {
        let here = st.site_of(frag);
        report.record_visit(here);
        // Ready when the local parallel phase finished and every child's
        // resolved triplet has arrived.
        let mut ready = *site_compute.get(&here.0).unwrap_or(&0.0);
        for child in &st.entry(frag).children {
            let child_site = st.site_of(*child);
            let mut arrival = done_at[child];
            if child_site != here {
                report.record_message(child_site, here, tri_bytes, MessageKind::Triplet);
                arrival += cluster.model.transfer_time(tri_bytes);
            }
            ready = ready.max(arrival);
        }
        let start = Instant::now();
        let closed = open[&frag]
            .substitute(&|var: Var| {
                resolved
                    .get(&var.frag)
                    .map(|r| Formula::constant(r.value_of(var)))
            })
            .resolved()
            .expect("children resolved in postorder");
        let step = start.elapsed();
        report.record_compute(here, step);
        report.record_work(
            here,
            q.len() as u64 * (1 + st.entry(frag).children.len() as u64),
        );
        resolved.insert(frag, closed);
        done_at.insert(frag, ready + step.as_secs_f64());
    }

    let root = cluster.forest.root_fragment();
    let answer = resolved[&root].v[q.root() as usize];

    let broadcast = if sites.len() > 1 {
        cluster.model.transfer_time(qsize + st.byte_size())
    } else {
        0.0
    };
    report.elapsed_model_s = broadcast + done_at[&root];
    report.elapsed_wall_s = wall.elapsed().as_secs_f64();
    EvalOutcome {
        answer,
        report,
        algorithm: "FullDistParBoX",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::parbox;
    use parbox_frag::{strategies, Forest, Placement, SiteId};
    use parbox_net::NetworkModel;
    use parbox_query::{compile, parse_query};
    use parbox_xml::Tree;

    fn chain_forest(n: usize) -> Forest {
        let mut xml = String::new();
        for i in 0..n * 3 {
            xml.push_str(&format!("<lvl{i}><p{}/><q/>", i % 5));
        }
        xml.push_str("<goal>here</goal>");
        for i in (0..n * 3).rev() {
            xml.push_str(&format!("</lvl{i}>"));
        }
        let mut forest = Forest::from_tree(Tree::parse(&xml).unwrap());
        strategies::chain(&mut forest, n).unwrap();
        forest
    }

    #[test]
    fn agrees_with_parbox() {
        let forest = chain_forest(5);
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        for src in [
            "[//goal = \"here\"]",
            "[//lvl0 and //goal]",
            "[//nope]",
            "[not //nope]",
        ] {
            let q = compile(&parse_query(src).unwrap());
            assert_eq!(
                full_dist_parbox(&cluster, &q).answer,
                parbox(&cluster, &q).answer,
                "on {src}"
            );
        }
    }

    #[test]
    fn no_variables_cross_the_network() {
        // Every triplet message has the fixed resolved size.
        let forest = chain_forest(4);
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = compile(&parse_query("[//goal]").unwrap());
        let out = full_dist_parbox(&cluster, &q);
        let expect = resolved_triplet_wire_size(q.len());
        for m in &out.report.messages {
            if m.kind == MessageKind::Triplet {
                assert_eq!(m.bytes, expect);
            }
        }
    }

    #[test]
    fn triplet_traffic_at_most_parbox() {
        let forest = chain_forest(6);
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = compile(&parse_query("[//goal or //p1]").unwrap());
        let fd = full_dist_parbox(&cluster, &q);
        let pb = parbox(&cluster, &q);
        assert!(
            fd.report.bytes_of_kind(MessageKind::Triplet)
                <= pb.report.bytes_of_kind(MessageKind::Triplet),
            "fulldist should not ship more triplet bytes than parbox"
        );
    }

    #[test]
    fn visits_once_per_fragment() {
        let forest = chain_forest(4);
        // Two fragments per site.
        let placement = Placement::round_robin(&forest, 2);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = compile(&parse_query("[//goal]").unwrap());
        let out = full_dist_parbox(&cluster, &q);
        assert_eq!(out.report.site(SiteId(0)).visits, 2);
        assert_eq!(out.report.site(SiteId(1)).visits, 2);
    }
}

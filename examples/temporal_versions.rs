//! Temporal database over a version chain: the paper's FT2 scenario.
//! Each fragment is one version of an auction site, nested under its
//! predecessor; versions live on different archive servers. LazyParBoX
//! walks the chain only as deep as needed to answer a query, while
//! eager ParBoX evaluates every version in parallel.
//!
//! Run with: `cargo run --example temporal_versions`

use parbox::core::{full_dist_parbox, lazy_parbox, parbox};
use parbox::frag::{Forest, Placement};
use parbox::net::{Cluster, NetworkModel};
use parbox::query::{compile, parse_query};
use parbox::xmark::{generate, XmarkConfig};
use parbox::xml::Tree;

const VERSIONS: usize = 6;

fn main() {
    // Build the version history: version 0 (current) at the top, each
    // older version nested below, each tagged with a release label.
    let mut tree = Tree::new("history");
    let mut cur = tree.root();
    for v in 0..VERSIONS {
        let version = tree.add_child(cur, "version");
        tree.set_attr(version, "seq", &v.to_string());
        let tag = tree.add_child(version, "release");
        tree.set_text(tag, &format!("r{v}"));
        let snapshot = generate(XmarkConfig {
            target_bytes: 12_000,
            seed: 7 + v as u64,
        });
        tree.append_tree(version, &snapshot);
        cur = version;
    }

    // Fragment: one version per archive server, chained (FT2).
    let mut forest = Forest::from_tree(tree);
    let mut last = forest.root_fragment();
    for v in 1..VERSIONS {
        let cut = {
            let t = &forest.fragment(last).tree;
            t.descendants(t.root())
                .find(|&n| {
                    t.label_str(n) == "version" && t.node(n).attr("seq") == Some(&v.to_string())
                })
                .expect("version node")
        };
        last = forest.split(last, cut).expect("splittable");
    }
    let placement = Placement::one_per_fragment(&forest);
    let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
    println!(
        "version chain: {} fragments, depth {}",
        forest.card(),
        cluster.source_tree.max_depth()
    );

    // Query 1: was release r1 ever published? (shallow — near the top)
    // Query 2: was release r5 ever published? (deep — end of the chain)
    // Query 3: was release r9 ever published? (nowhere — full walk)
    for release in ["r1", "r5", "r9"] {
        let q =
            compile(&parse_query(&format!("[//version[release/text() = \"{release}\"]]")).unwrap());
        let eager = parbox(&cluster, &q);
        let lazy = lazy_parbox(&cluster, &q);
        let fulld = full_dist_parbox(&cluster, &q);
        assert_eq!(eager.answer, lazy.answer);
        assert_eq!(eager.answer, fulld.answer);
        let lazy_visits: usize = lazy.report.sites().map(|(_, r)| r.visits).sum();
        println!(
            "{release}: answer={:<5}  eager-work={:>7}  lazy-work={:>7}  lazy-visited {} of {} versions",
            eager.answer,
            eager.report.total_work(),
            lazy.report.total_work(),
            lazy_visits,
            forest.card()
        );
    }

    // The headline trade-off: for shallow hits lazy does a fraction of
    // the work; for misses it walks everything sequentially.
    let shallow = compile(&parse_query("[//version[release/text() = \"r0\"]]").unwrap());
    let lazy = lazy_parbox(&cluster, &shallow);
    let eager = parbox(&cluster, &shallow);
    println!(
        "\nshallow hit: lazy evaluated {} fragment(s), eager evaluated {}",
        lazy.report.sites().map(|(_, r)| r.visits).sum::<usize>(),
        forest.card()
    );
    assert!(lazy.report.total_work() < eager.report.total_work());
}

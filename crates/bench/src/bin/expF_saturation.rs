//! **Experiment F**: sustained-load saturation of the resident serving
//! engine, plus the sharded-arena intern contention probe — by default
//! a 16-site FT1 deployment, a 16-thread probe, and a 400-query
//! open-loop sweep at 0.5x / 1.0x / 2.0x of calibrated capacity.
//!
//! Usage:
//! `cargo run --release -p parbox-bench --bin expF_saturation \
//!    [--scale BYTES] [--sites N] [--threads N] [--queries N] \
//!    [--rate MULT] [--json PATH]`
//!
//! `--rate MULT` replaces the default sweep with a single offered-rate
//! multiplier. `--json PATH` writes the row as `BENCH_saturation.json`
//! (the CI workflow uploads it next to the expC/expD/expE artifacts).
//! The binary asserts the ISSUE acceptance criteria: modeled intern
//! scaling ≥2x at the probe's thread count (the byte-identical
//! resolved-triplet differential against the reference oracle is
//! asserted inside the experiment).

// The experiment is named expF in the issue tracker; keep the binary name.
#![allow(non_snake_case)]

use parbox_bench::experiments::{expf_saturation, ExpFRow};
use parbox_bench::Scale;

fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn to_json(r: &ExpFRow) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"expF_saturation\",\n");
    out.push_str(&format!("  \"sites\": {},\n", r.sites));
    out.push_str(&format!("  \"threads\": {},\n", r.threads));
    out.push_str(&format!("  \"queries\": {},\n", r.queries));
    out.push_str(&format!("  \"capacity_qps\": {:.1},\n", r.capacity_qps));
    out.push_str(&format!("  \"qps\": {:.1},\n", r.saturated_qps));
    out.push_str(&format!("  \"p50_ms\": {:.4},\n", r.p50_ms));
    out.push_str(&format!("  \"p99_ms\": {:.4},\n", r.p99_ms));
    out.push_str(&format!("  \"p999_ms\": {:.4},\n", r.p999_ms));
    out.push_str(&format!("  \"cache_hit_rate\": {:.4},\n", r.cache_hit_rate));
    out.push_str("  \"rates\": [\n");
    for (i, p) in r.rates.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"offered_qps\": {:.1}, \"achieved_qps\": {:.1}, \
             \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"p999_ms\": {:.4}}}{}\n",
            p.offered_qps,
            p.achieved_qps,
            p.p50_ms,
            p.p99_ms,
            p.p999_ms,
            if i + 1 < r.rates.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"intern_probe\": {\n");
    out.push_str(&format!(
        "    \"modeled_scaling\": {:.2},\n",
        r.probe.modeled_scaling()
    ));
    out.push_str(&format!(
        "    \"wall_scaling\": {:.2},\n",
        r.probe.wall_scaling()
    ));
    out.push_str(&format!(
        "    \"sharded_modeled_ops_per_sec\": {:.0},\n",
        r.probe.sharded.modeled_ops_per_sec
    ));
    out.push_str(&format!(
        "    \"single_lock_modeled_ops_per_sec\": {:.0},\n",
        r.probe.single_lock.modeled_ops_per_sec
    ));
    out.push_str(&format!(
        "    \"sharded_ns_per_op\": {:.1},\n",
        r.probe.sharded.ns_per_op
    ));
    out.push_str(&format!(
        "    \"single_lock_ns_per_op\": {:.1}\n",
        r.probe.single_lock.ns_per_op
    ));
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let scale = Scale::from_args();
    let sites: usize = flag("--sites").and_then(|v| v.parse().ok()).unwrap_or(16);
    let threads: usize = flag("--threads").and_then(|v| v.parse().ok()).unwrap_or(16);
    let queries: usize = flag("--queries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let rates: Vec<f64> = match flag("--rate").and_then(|v| v.parse().ok()) {
        Some(m) => vec![m],
        None => vec![0.5, 1.0, 2.0],
    };

    let row = expf_saturation(scale, sites, threads, queries, &rates);
    println!(
        "Experiment F — sustained-load saturation ({} sites, {} probe threads, {} queries/run)",
        row.sites, row.threads, row.queries
    );
    println!(
        "  calibrated capacity: {:.0} qps (closed loop)",
        row.capacity_qps
    );
    for p in &row.rates {
        println!(
            "  offered {:>8.0} qps -> achieved {:>8.0} qps   p50 {:>8.3} ms  p99 {:>8.3} ms  p999 {:>8.3} ms",
            p.offered_qps, p.achieved_qps, p.p50_ms, p.p99_ms, p.p999_ms
        );
    }
    println!(
        "  saturation: {:.0} qps, p50 {:.3} ms, p99 {:.3} ms, p999 {:.3} ms, cache hit rate {:.1}%",
        row.saturated_qps,
        row.p50_ms,
        row.p99_ms,
        row.p999_ms,
        100.0 * row.cache_hit_rate
    );
    println!(
        "  intern probe @ {} threads: modeled {:.1}x (wall {:.2}x on this host; \
         sharded {:.0} ns/op single-thread vs single-lock {:.0} ns/op)",
        row.probe.threads,
        row.probe.modeled_scaling(),
        row.probe.wall_scaling(),
        row.probe.sharded.ns_per_op,
        row.probe.single_lock.ns_per_op
    );

    assert!(
        row.probe.modeled_scaling() >= 2.0,
        "acceptance: sharded intern path must scale ≥2x over the single mutex \
         at {} threads, got {:.2}x",
        row.probe.threads,
        row.probe.modeled_scaling()
    );

    if let Some(path) = flag("--json") {
        std::fs::write(&path, to_json(&row)).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("  json row written to {path}");
    }
}

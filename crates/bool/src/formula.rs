//! Boolean formulas — the *partial answers* of ParBoX.
//!
//! A formula is either a constant, a [`Var`], or a Boolean combination.
//! Construction goes through smart constructors that implement the
//! paper's `compFm` procedure (Fig. 3b): composing a constant with a
//! formula folds immediately (`true ∧ f = f`, `false ∧ f = false`, …), so
//! a formula only retains structure that genuinely depends on unknown
//! sub-fragment values.
//!
//! `And`/`Or` are n-ary and flattened, keeping formula size linear in the
//! number of referenced virtual nodes — the paper's `O(card(F_j))` bound
//! on entry size.

use crate::var::Var;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A Boolean formula over sub-fragment variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// A known truth value.
    Const(bool),
    /// An unknown triplet entry of a sub-fragment.
    Var(Var),
    /// Negation.
    Not(Arc<Formula>),
    /// N-ary conjunction (flattened, at least two operands).
    And(Arc<[Formula]>),
    /// N-ary disjunction (flattened, at least two operands).
    Or(Arc<[Formula]>),
}

/// The Boolean operator argument of [`comp_fm`], mirroring the paper's
/// `AND`, `OR`, `NEG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoolOp {
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Negation (unary; the second operand is ignored).
    Neg,
}

/// The paper's `compFm(f1, f2, op)`: composes two partial answers,
/// folding constants so the result is a truth value whenever possible.
pub fn comp_fm(f1: Formula, f2: Formula, op: BoolOp) -> Formula {
    match op {
        BoolOp::Neg => f1.not(),
        BoolOp::And => Formula::and(f1, f2),
        BoolOp::Or => Formula::or(f1, f2),
    }
}

impl Formula {
    /// The constant `true`.
    pub const TRUE: Formula = Formula::Const(true);
    /// The constant `false`.
    pub const FALSE: Formula = Formula::Const(false);

    /// A variable formula.
    #[inline]
    pub fn var(v: Var) -> Formula {
        Formula::Var(v)
    }

    /// Smart conjunction with constant folding and flattening.
    pub fn and(a: Formula, b: Formula) -> Formula {
        match (a, b) {
            (Formula::Const(false), _) | (_, Formula::Const(false)) => Formula::FALSE,
            (Formula::Const(true), f) | (f, Formula::Const(true)) => f,
            (a, b) => {
                let mut ops: Vec<Formula> = Vec::with_capacity(2);
                Self::flatten_into(a, &mut ops, true);
                Self::flatten_into(b, &mut ops, true);
                debug_assert!(ops.len() >= 2);
                Formula::And(ops.into())
            }
        }
    }

    /// Smart disjunction with constant folding and flattening.
    pub fn or(a: Formula, b: Formula) -> Formula {
        match (a, b) {
            (Formula::Const(true), _) | (_, Formula::Const(true)) => Formula::TRUE,
            (Formula::Const(false), f) | (f, Formula::Const(false)) => f,
            (a, b) => {
                let mut ops: Vec<Formula> = Vec::with_capacity(2);
                Self::flatten_into(a, &mut ops, false);
                Self::flatten_into(b, &mut ops, false);
                debug_assert!(ops.len() >= 2);
                Formula::Or(ops.into())
            }
        }
    }

    fn flatten_into(f: Formula, ops: &mut Vec<Formula>, conj: bool) {
        match (f, conj) {
            (Formula::And(xs), true) | (Formula::Or(xs), false) => ops.extend(xs.iter().cloned()),
            (f, _) => ops.push(f),
        }
    }

    /// Smart negation (double negation and constants fold).
    /// Named after the paper's `NEG`; an owned-`self` combinator rather
    /// than `std::ops::Not` so call sites chain like the other builders.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        match self {
            Formula::Const(b) => Formula::Const(!b),
            Formula::Not(inner) => (*inner).clone(),
            f => Formula::Not(Arc::new(f)),
        }
    }

    /// N-ary disjunction of an iterator (absorbs constants).
    pub fn any<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        items.into_iter().fold(Formula::FALSE, Formula::or)
    }

    /// N-ary conjunction of an iterator (absorbs constants).
    pub fn all<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        items.into_iter().fold(Formula::TRUE, Formula::and)
    }

    /// True when the formula is a constant. The paper's `isFormula(f)`
    /// predicate is the negation of this.
    #[inline]
    pub fn is_const(&self) -> bool {
        matches!(self, Formula::Const(_))
    }

    /// The constant value, if fully evaluated.
    #[inline]
    pub fn as_const(&self) -> Option<bool> {
        match self {
            Formula::Const(b) => Some(*b),
            _ => None,
        }
    }

    /// Number of nodes of the formula tree; proxy for its in-memory size.
    pub fn size(&self) -> usize {
        match self {
            Formula::Const(_) | Formula::Var(_) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(xs) | Formula::Or(xs) => 1 + xs.iter().map(Formula::size).sum::<usize>(),
        }
    }

    /// The set of variables occurring in the formula.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Formula::Const(_) => {}
            Formula::Var(v) => {
                out.insert(*v);
            }
            Formula::Not(f) => f.collect_vars(out),
            Formula::And(xs) | Formula::Or(xs) => {
                for f in xs.iter() {
                    f.collect_vars(out);
                }
            }
        }
    }

    /// True when the formula references no variables of fragments other
    /// than those in `allowed` (used to check the solver's invariants).
    pub fn closed(&self) -> bool {
        self.vars().is_empty()
    }

    /// Substitutes variables using `lookup`, re-simplifying along the way.
    /// Variables for which `lookup` returns `None` remain free.
    pub fn substitute<F>(&self, lookup: &F) -> Formula
    where
        F: Fn(Var) -> Option<Formula>,
    {
        match self {
            Formula::Const(b) => Formula::Const(*b),
            Formula::Var(v) => lookup(*v).unwrap_or(Formula::Var(*v)),
            Formula::Not(f) => f.substitute(lookup).not(),
            Formula::And(xs) => Formula::all(xs.iter().map(|f| f.substitute(lookup))),
            Formula::Or(xs) => Formula::any(xs.iter().map(|f| f.substitute(lookup))),
        }
    }

    /// Evaluates the formula under a total assignment.
    pub fn eval<F>(&self, assign: &F) -> bool
    where
        F: Fn(Var) -> bool,
    {
        match self {
            Formula::Const(b) => *b,
            Formula::Var(v) => assign(*v),
            Formula::Not(f) => !f.eval(assign),
            Formula::And(xs) => xs.iter().all(|f| f.eval(assign)),
            Formula::Or(xs) => xs.iter().any(|f| f.eval(assign)),
        }
    }
}

impl From<bool> for Formula {
    fn from(b: bool) -> Self {
        Formula::Const(b)
    }
}

impl From<Var> for Formula {
    fn from(v: Var) -> Self {
        Formula::Var(v)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Const(b) => write!(f, "{}", if *b { "1" } else { "0" }),
            Formula::Var(v) => write!(f, "{v}"),
            Formula::Not(inner) => write!(f, "¬({inner})"),
            Formula::And(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Formula::Or(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VecKind;
    use parbox_xml::FragmentId;

    fn v(i: u32) -> Formula {
        Formula::var(Var::new(FragmentId(i), VecKind::V, 0))
    }

    #[test]
    fn constant_folding_and() {
        assert_eq!(Formula::and(Formula::TRUE, v(1)), v(1));
        assert_eq!(Formula::and(v(1), Formula::TRUE), v(1));
        assert_eq!(Formula::and(Formula::FALSE, v(1)), Formula::FALSE);
        assert_eq!(Formula::and(v(1), Formula::FALSE), Formula::FALSE);
        assert_eq!(Formula::and(Formula::TRUE, Formula::FALSE), Formula::FALSE);
    }

    #[test]
    fn constant_folding_or() {
        assert_eq!(Formula::or(Formula::FALSE, v(1)), v(1));
        assert_eq!(Formula::or(v(1), Formula::FALSE), v(1));
        assert_eq!(Formula::or(Formula::TRUE, v(1)), Formula::TRUE);
        assert_eq!(Formula::or(v(1), Formula::TRUE), Formula::TRUE);
    }

    #[test]
    fn comp_fm_matches_paper_cases() {
        // (c0) two constants.
        assert_eq!(
            comp_fm(Formula::TRUE, Formula::TRUE, BoolOp::And),
            Formula::TRUE
        );
        assert_eq!(
            comp_fm(Formula::TRUE, Formula::FALSE, BoolOp::And),
            Formula::FALSE
        );
        // (c1) constant, formula.
        assert_eq!(comp_fm(Formula::TRUE, v(1), BoolOp::And), v(1));
        assert_eq!(comp_fm(Formula::FALSE, v(1), BoolOp::And), Formula::FALSE);
        assert_eq!(comp_fm(Formula::TRUE, v(1), BoolOp::Or), Formula::TRUE);
        assert_eq!(comp_fm(Formula::FALSE, v(1), BoolOp::Or), v(1));
        // (c2) formula, constant — symmetric.
        assert_eq!(comp_fm(v(1), Formula::TRUE, BoolOp::And), v(1));
        assert_eq!(comp_fm(v(1), Formula::FALSE, BoolOp::Or), v(1));
        // (c3) two formulas — structure retained.
        let f = comp_fm(v(1), v(2), BoolOp::And);
        assert!(matches!(f, Formula::And(_)));
        // NEG ignores the second operand.
        assert_eq!(comp_fm(Formula::TRUE, v(9), BoolOp::Neg), Formula::FALSE);
    }

    #[test]
    fn nary_flattening() {
        let f = Formula::and(Formula::and(v(1), v(2)), v(3));
        let Formula::And(xs) = &f else { panic!("{f}") };
        assert_eq!(xs.len(), 3);
        let g = Formula::or(v(1), Formula::or(v(2), v(3)));
        let Formula::Or(xs) = &g else { panic!("{g}") };
        assert_eq!(xs.len(), 3);
    }

    #[test]
    fn double_negation_folds() {
        assert_eq!(v(1).not().not(), v(1));
        assert_eq!(Formula::TRUE.not(), Formula::FALSE);
    }

    #[test]
    fn any_and_all_absorb() {
        assert_eq!(Formula::any(vec![]), Formula::FALSE);
        assert_eq!(Formula::all(vec![]), Formula::TRUE);
        assert_eq!(Formula::any(vec![Formula::FALSE, v(2)]), v(2));
        assert_eq!(Formula::all(vec![Formula::TRUE, v(2)]), v(2));
    }

    #[test]
    fn vars_collects_all() {
        let f = Formula::and(Formula::or(v(1), v(2)), v(3).not());
        let vs = f.vars();
        assert_eq!(vs.len(), 3);
    }

    #[test]
    fn substitution_resolves_and_simplifies() {
        // (v1 ∨ v2) ∧ ¬v3 with v1=false, v2=true, v3=false → true.
        let f = Formula::and(Formula::or(v(1), v(2)), v(3).not());
        let g = f.substitute(&|var: Var| match var.frag.0 {
            1 => Some(Formula::FALSE),
            2 => Some(Formula::TRUE),
            3 => Some(Formula::FALSE),
            _ => None,
        });
        assert_eq!(g, Formula::TRUE);
    }

    #[test]
    fn partial_substitution_leaves_free_vars() {
        let f = Formula::or(v(1), v(2));
        let g = f.substitute(&|var: Var| (var.frag.0 == 1).then_some(Formula::FALSE));
        assert_eq!(g, v(2));
        let h = f.substitute(&|var: Var| (var.frag.0 == 1).then_some(Formula::TRUE));
        assert_eq!(h, Formula::TRUE);
    }

    #[test]
    fn eval_total_assignment() {
        let f = Formula::and(v(1), v(2).not());
        assert!(f.eval(&|var: Var| var.frag.0 == 1));
        assert!(!f.eval(&|_| true));
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Formula::TRUE.size(), 1);
        assert_eq!(v(1).size(), 1);
        assert_eq!(Formula::and(v(1), v(2)).size(), 3);
        assert_eq!(Formula::and(v(1), v(2)).not().size(), 4);
    }

    #[test]
    fn display_uses_paper_notation() {
        let f = Formula::or(v(1), v(2).not());
        assert_eq!(f.to_string(), "(x1@F1 ∨ ¬(x1@F2))");
        assert_eq!(Formula::TRUE.to_string(), "1");
    }
}

//! Triplets `(V, CV, DV)` of formula vectors and the Boolean equation
//! system solved by the coordinator.
//!
//! Partially evaluating a fragment `F_j` yields one triplet of vectors,
//! each with `|QList(q)|` entries (paper, Fig. 3b):
//!
//! * `V[i]`  — value of sub-query `q_i` at the fragment root,
//! * `CV[i]` — `q_i` holds at some child of the fragment root,
//! * `DV[i]` — `q_i` holds at the root or some descendant.
//!
//! Entries are [`Formula`]s whose variables refer to `F_j`'s direct
//! sub-fragments. Collecting the triplets of every fragment produces a
//! *linear system of Boolean equations* (Example 3.2) that
//! [`EquationSystem::solve`] resolves in one bottom-up pass over the
//! fragment hierarchy (the paper's `evalST`).

use crate::formula::Formula;
use crate::var::{Var, VecKind};
use parbox_xml::FragmentId;
use std::collections::HashMap;
use std::fmt;

/// The `(V, CV, DV)` triplet computed for one fragment.
///
/// Entries are arena [`Formula`] handles, so triplet equality and
/// hashing reduce to `O(1)` id comparisons per entry — `Triplet` values
/// are therefore cheap, stable cache keys (the serving engine's
/// content-dedup and projection memos rely on this).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Triplet {
    /// Sub-query values at the fragment root.
    pub v: Vec<Formula>,
    /// Sub-query values accumulated over the root's children.
    pub cv: Vec<Formula>,
    /// Sub-query values accumulated over the root and its descendants.
    pub dv: Vec<Formula>,
}

impl Triplet {
    /// An all-`false` triplet of the given width.
    pub fn all_false(len: usize) -> Triplet {
        Triplet {
            v: vec![Formula::FALSE; len],
            cv: vec![Formula::FALSE; len],
            dv: vec![Formula::FALSE; len],
        }
    }

    /// The triplet of *fresh variables* introduced at a virtual node for
    /// sub-fragment `frag`: `x_i`, `cx_i`, `dx_i` for every sub-query.
    pub fn fresh_vars(frag: FragmentId, len: usize) -> Triplet {
        // One locked batch for all 3·len variables (Formula::var_many).
        let mut all = Formula::var_many(
            VecKind::ALL
                .iter()
                .flat_map(|&vec| (0..len as u32).map(move |i| Var::new(frag, vec, i))),
        );
        let dv = all.split_off(2 * len);
        let cv = all.split_off(len);
        Triplet { v: all, cv, dv }
    }

    /// Width (must equal `|QList(q)|`).
    pub fn len(&self) -> usize {
        debug_assert!(self.v.len() == self.cv.len() && self.cv.len() == self.dv.len());
        self.v.len()
    }

    /// True for a zero-width triplet.
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Access one vector by kind.
    pub fn get(&self, kind: VecKind) -> &[Formula] {
        match kind {
            VecKind::V => &self.v,
            VecKind::CV => &self.cv,
            VecKind::DV => &self.dv,
        }
    }

    /// Total formula size over all entries (proxy for message payload; the
    /// exact wire size is [`crate::encode::triplet_wire_size`]).
    pub fn size(&self) -> usize {
        self.v
            .iter()
            .chain(&self.cv)
            .chain(&self.dv)
            .map(Formula::size)
            .sum()
    }

    /// True when no entry references a variable. `O(1)` per entry: a
    /// canonical variable-free formula is a constant, so this checks ids
    /// against the two constant ids — no variable set is materialized.
    pub fn is_closed(&self) -> bool {
        self.v
            .iter()
            .chain(&self.cv)
            .chain(&self.dv)
            .all(|f| f.is_const())
    }

    /// Substitutes every entry, re-simplifying. All `3·|QList|` entries
    /// share one DAG snapshot and one memo table
    /// ([`Formula::substitute_all`]): each distinct subformula is
    /// rebuilt once per triplet, not once per occurrence — this is the
    /// per-fragment memo table of the solver's `evalST` pass.
    pub fn substitute<F>(&self, lookup: &F) -> Triplet
    where
        F: Fn(Var) -> Option<Formula>,
    {
        let m = self.len();
        let roots: Vec<Formula> = self
            .v
            .iter()
            .chain(&self.cv)
            .chain(&self.dv)
            .copied()
            .collect();
        let mut out = Formula::substitute_all(&roots, lookup);
        let dv = out.split_off(2 * m);
        let cv = out.split_off(m);
        Triplet { v: out, cv, dv }
    }

    /// Converts to plain Booleans; `None` if any entry is still open.
    pub fn resolved(&self) -> Option<ResolvedTriplet> {
        let take = |xs: &[Formula]| xs.iter().map(Formula::as_const).collect::<Option<Vec<_>>>();
        Some(ResolvedTriplet {
            v: take(&self.v)?,
            cv: take(&self.cv)?,
            dv: take(&self.dv)?,
        })
    }
}

impl fmt::Display for Triplet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let row = |f: &mut fmt::Formatter<'_>, name: &str, xs: &[Formula]| -> fmt::Result {
            write!(f, "{name} = <")?;
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{x}")?;
            }
            writeln!(f, ">")
        };
        row(f, "V ", &self.v)?;
        row(f, "CV", &self.cv)?;
        row(f, "DV", &self.dv)
    }
}

/// The difference between two triplets of the same width: the entries
/// whose formula changed, as `(vector, index, new formula)` records.
///
/// This is what a site ships to the coordinator after repairing a cached
/// triplet in place — an update that touches one root-to-change path
/// perturbs only the entries whose sub-query saw the change, so the
/// delta is usually far smaller than the full triplet
/// ([`crate::encode::triplet_delta_dag_wire_size`] accounts the bytes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TripletDelta {
    /// Width of the triplets being diffed (`|QList(q)|`).
    pub width: u32,
    /// Changed entries: which vector, which sub-query index, new value.
    pub changed: Vec<(VecKind, u32, Formula)>,
}

impl TripletDelta {
    /// Records the entries of `new` that differ from `old`. Both triplets
    /// must have the same width (the query did not change, only the data).
    pub fn diff(old: &Triplet, new: &Triplet) -> TripletDelta {
        assert_eq!(old.len(), new.len(), "triplet widths must match");
        let mut changed = Vec::new();
        for kind in VecKind::ALL {
            let (o, n) = (old.get(kind), new.get(kind));
            for (i, (a, b)) in o.iter().zip(n).enumerate() {
                if a != b {
                    changed.push((kind, i as u32, *b));
                }
            }
        }
        TripletDelta {
            width: new.len() as u32,
            changed,
        }
    }

    /// Rebuilds the new triplet by patching `base` (the old triplet) with
    /// the changed entries. Inverse of [`TripletDelta::diff`].
    pub fn apply(&self, base: &Triplet) -> Triplet {
        assert_eq!(base.len(), self.width as usize, "triplet widths must match");
        let mut out = base.clone();
        for &(kind, ix, f) in &self.changed {
            let vec = match kind {
                VecKind::V => &mut out.v,
                VecKind::CV => &mut out.cv,
                VecKind::DV => &mut out.dv,
            };
            vec[ix as usize] = f;
        }
        out
    }

    /// Number of changed entries.
    pub fn len(&self) -> usize {
        self.changed.len()
    }

    /// True when the two triplets were identical.
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty()
    }
}

/// A fully resolved triplet of truth values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedTriplet {
    /// Values of `V`.
    pub v: Vec<bool>,
    /// Values of `CV`.
    pub cv: Vec<bool>,
    /// Values of `DV`.
    pub dv: Vec<bool>,
}

impl ResolvedTriplet {
    /// Value of a variable referring to this triplet's fragment.
    #[inline]
    pub fn value_of(&self, var: Var) -> bool {
        match var.vec {
            VecKind::V => self.v[var.sub as usize],
            VecKind::CV => self.cv[var.sub as usize],
            VecKind::DV => self.dv[var.sub as usize],
        }
    }
}

/// Error from [`EquationSystem::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// A triplet references a fragment for which no triplet was provided
    /// (a site failed to answer, or the source tree is inconsistent).
    MissingFragment(FragmentId),
    /// After substituting all sub-fragment values an entry is still open —
    /// the fragment order was not bottom-up.
    NotBottomUp(FragmentId),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::MissingFragment(id) => {
                write!(f, "no triplet received for fragment {id}")
            }
            SolveError::NotBottomUp(id) => write!(
                f,
                "triplet of fragment {id} still open after substitution; order is not bottom-up"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

/// The linear system of Boolean equations assembled by the coordinator:
/// one [`Triplet`] per fragment, with variables pointing at sub-fragments.
#[derive(Debug, Default, Clone)]
pub struct EquationSystem {
    triplets: HashMap<FragmentId, Triplet>,
}

impl EquationSystem {
    /// An empty system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the triplet computed for `frag` (replacing any previous
    /// one — incremental maintenance re-registers updated fragments).
    pub fn insert(&mut self, frag: FragmentId, triplet: Triplet) {
        self.triplets.insert(frag, triplet);
    }

    /// Triplet registered for `frag`.
    pub fn get(&self, frag: FragmentId) -> Option<&Triplet> {
        self.triplets.get(&frag)
    }

    /// Number of registered fragments.
    pub fn len(&self) -> usize {
        self.triplets.len()
    }

    /// True when no triplet was registered.
    pub fn is_empty(&self) -> bool {
        self.triplets.is_empty()
    }

    /// Solves the system given a *bottom-up* fragment order (children
    /// before parents — a postorder of the fragment tree). Returns the
    /// resolved truth values per fragment.
    ///
    /// This is the paper's `evalST`: leaves are closed, and each
    /// substitution step unifies a parent's variables with its children's
    /// resolved vectors (Example 3.3). Runs in time linear in the total
    /// size of the system.
    pub fn solve(
        &self,
        bottom_up: &[FragmentId],
    ) -> Result<HashMap<FragmentId, ResolvedTriplet>, SolveError> {
        let mut resolved: HashMap<FragmentId, ResolvedTriplet> = HashMap::new();
        for &frag in bottom_up {
            let triplet = self
                .triplets
                .get(&frag)
                .ok_or(SolveError::MissingFragment(frag))?;
            let substituted = triplet.substitute(&|var: Var| {
                resolved
                    .get(&var.frag)
                    .map(|r| Formula::constant(r.value_of(var)))
            });
            let closed = substituted
                .resolved()
                .ok_or(SolveError::NotBottomUp(frag))?;
            resolved.insert(frag, closed);
        }
        Ok(resolved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(i: u32) -> FragmentId {
        FragmentId(i)
    }

    #[test]
    fn fresh_vars_have_right_shape() {
        let t = Triplet::fresh_vars(fid(2), 4);
        assert_eq!(t.len(), 4);
        assert!(!t.is_closed());
        assert_eq!(t.v[3], Formula::var(Var::new(fid(2), VecKind::V, 3)));
        assert_eq!(t.dv[0], Formula::var(Var::new(fid(2), VecKind::DV, 0)));
    }

    #[test]
    fn all_false_is_closed() {
        let t = Triplet::all_false(3);
        assert!(t.is_closed());
        assert_eq!(
            t.resolved().unwrap(),
            ResolvedTriplet {
                v: vec![false; 3],
                cv: vec![false; 3],
                dv: vec![false; 3]
            }
        );
    }

    #[test]
    fn solve_example_3_3_shape() {
        // Mimics the paper's Example 3.3 for the last sub-query only:
        // F0's answer = dy ∨ dz where dy is DV of F1, dz is DV of F3;
        // F1's DV = dx (DV of F2); F2 resolves to 1; F3 resolves to 0.
        let w = 1;
        let dvar = |frag: u32| Formula::var(Var::new(fid(frag), VecKind::DV, 0));

        let mut sys = EquationSystem::new();
        let mut f0 = Triplet::all_false(w);
        f0.v[0] = Formula::or(dvar(1), dvar(3));
        f0.dv[0] = f0.v[0];
        sys.insert(fid(0), f0);

        let mut f1 = Triplet::all_false(w);
        f1.v[0] = dvar(2);
        f1.dv[0] = dvar(2);
        sys.insert(fid(1), f1);

        let mut f2 = Triplet::all_false(w);
        f2.v[0] = Formula::TRUE;
        f2.dv[0] = Formula::TRUE;
        sys.insert(fid(2), f2);

        sys.insert(fid(3), Triplet::all_false(w)); // dz = 0

        let order = [fid(2), fid(3), fid(1), fid(0)];
        let solved = sys.solve(&order).unwrap();
        assert!(solved[&fid(0)].v[0], "query answer should be true");
        assert!(solved[&fid(1)].dv[0]);
        assert!(!solved[&fid(3)].dv[0]);
    }

    #[test]
    fn solve_detects_missing_fragment() {
        let mut sys = EquationSystem::new();
        let mut f0 = Triplet::all_false(1);
        f0.v[0] = Formula::var(Var::new(fid(9), VecKind::V, 0));
        sys.insert(fid(0), f0);
        // Order never supplies F9's triplet.
        let err = sys.solve(&[fid(0)]).unwrap_err();
        assert_eq!(err, SolveError::NotBottomUp(fid(0)));
        let err = sys.solve(&[fid(9), fid(0)]).unwrap_err();
        assert_eq!(err, SolveError::MissingFragment(fid(9)));
    }

    #[test]
    fn substitute_simplifies_entries() {
        let mut t = Triplet::all_false(2);
        let x = Var::new(fid(1), VecKind::V, 0);
        t.v[0] = Formula::or(Formula::var(x), Formula::FALSE);
        let s = t.substitute(&|var| (var == x).then_some(Formula::TRUE));
        assert_eq!(s.v[0], Formula::TRUE);
        assert!(s.is_closed());
    }

    #[test]
    fn resolved_none_when_open() {
        let t = Triplet::fresh_vars(fid(1), 2);
        assert!(t.resolved().is_none());
    }

    #[test]
    fn display_renders_vectors() {
        let t = Triplet::fresh_vars(fid(2), 2);
        let s = t.to_string();
        assert!(s.contains("V  = <x1@F2, x2@F2>"), "{s}");
        assert!(s.contains("DV = <dx1@F2, dx2@F2>"), "{s}");
    }

    #[test]
    fn size_sums_entries() {
        let t = Triplet::all_false(2);
        assert_eq!(t.size(), 6);
    }
}

//! Regenerates **Fig. 13**: one site holding the whole corpus split into
//! 1→10 equal fragments — evaluation time stays (almost) constant.

use parbox_bench::experiments::experiment4_fig13;
use parbox_bench::{print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let rows = experiment4_fig13(scale, 10);
    print_table(
        &format!(
            "Fig. 13 — fragments per site (corpus {} bytes)",
            scale.corpus_bytes
        ),
        "fragments",
        &rows,
    );
}

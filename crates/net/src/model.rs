//! Network cost model.
//!
//! The paper's experiments ran on ten Linux machines over a LAN; this
//! reproduction runs sites as threads on one machine and *models* the
//! network: each message costs a fixed per-message latency plus its
//! payload divided by the link bandwidth. The coordinator's inbound link
//! is shared, so bulk data shipped to it (the `NaiveCentralized`
//! baseline) serializes — which is exactly what makes shipping 25–45 MB
//! of fragments dominate Fig. 7.

use serde::{Deserialize, Serialize};

/// Link parameters used to convert message sizes into modeled seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// One-way per-message latency, seconds.
    pub latency_s: f64,
    /// Link bandwidth, bytes per second.
    pub bandwidth_bytes_per_s: f64,
}

impl NetworkModel {
    /// 100 Mbit/s switched LAN with 0.2 ms latency — the paper's setting.
    pub fn lan() -> NetworkModel {
        NetworkModel {
            latency_s: 0.2e-3,
            bandwidth_bytes_per_s: 100e6 / 8.0,
        }
    }

    /// 10 Mbit/s wide-area link with 30 ms latency (P2P/Internet setting
    /// discussed in the paper's introduction).
    pub fn wan() -> NetworkModel {
        NetworkModel {
            latency_s: 30e-3,
            bandwidth_bytes_per_s: 10e6 / 8.0,
        }
    }

    /// Free network — isolates pure computation in ablation benches.
    pub fn infinite() -> NetworkModel {
        NetworkModel {
            latency_s: 0.0,
            bandwidth_bytes_per_s: f64::INFINITY,
        }
    }

    /// Modeled time to deliver one message of `bytes` payload.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Modeled time for a set of transfers that share one link (e.g. the
    /// coordinator's inbound link): payloads serialize, latencies overlap.
    pub fn shared_link_time<I: IntoIterator<Item = usize>>(&self, payloads: I) -> f64 {
        let mut total = 0usize;
        let mut any = false;
        for p in payloads {
            total += p;
            any = true;
        }
        if !any {
            return 0.0;
        }
        self.latency_s + total as f64 / self.bandwidth_bytes_per_s
    }

    /// Predicted modeled time of one *communication round*: `msgs`
    /// messages totalling `bytes` payload that overlap in latency and
    /// share link bandwidth. This is the planning-time counterpart of
    /// [`NetworkModel::shared_link_time`] — a cost estimator that knows
    /// only aggregate message/byte counts (e.g. from
    /// `parbox_frag::ForestStats`) predicts exactly what the measured
    /// [`crate::RunReport`] accounting will charge for the same round.
    pub fn estimate_round(&self, msgs: usize, bytes: usize) -> f64 {
        if msgs == 0 {
            return 0.0;
        }
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_transfer_time_scales_with_bytes() {
        let m = NetworkModel::lan();
        let small = m.transfer_time(1_000);
        let large = m.transfer_time(25_000_000); // a 25 MB fragment
        assert!(large > small);
        assert!(large > 1.9, "25MB over 100Mb/s takes ~2s, got {large}");
        assert!(small < 0.001);
    }

    #[test]
    fn infinite_network_is_free() {
        let m = NetworkModel::infinite();
        assert_eq!(m.transfer_time(1 << 30), 0.0);
        assert_eq!(m.shared_link_time([1, 2, 3]), 0.0);
    }

    #[test]
    fn shared_link_serializes_payloads() {
        let m = NetworkModel::lan();
        let a = m.shared_link_time([1_000_000, 1_000_000]);
        let b = m.transfer_time(2_000_000);
        assert!((a - b).abs() < 1e-9);
        assert_eq!(m.shared_link_time(std::iter::empty()), 0.0);
    }

    #[test]
    fn estimate_round_matches_shared_link_accounting() {
        let m = NetworkModel::lan();
        // An estimated round of n messages totalling B bytes predicts the
        // same figure shared_link_time charges when the round happens.
        assert_eq!(
            m.estimate_round(3, 3_000),
            m.shared_link_time([1_000, 1_000, 1_000])
        );
        assert_eq!(m.estimate_round(0, 0), 0.0);
        assert_eq!(NetworkModel::infinite().estimate_round(5, 1 << 30), 0.0);
    }

    #[test]
    fn wan_slower_than_lan() {
        assert!(
            NetworkModel::wan().transfer_time(10_000) > NetworkModel::lan().transfer_time(10_000)
        );
    }
}

//! **Experiment G**: chaos-hardened serving. Sweeps fault kinds ×
//! injection rates × network models over a resident FT1 deployment with
//! deterministic fault injection at the site actors, checking every
//! answer against the centralized oracle — by default 6 machines, 150
//! stream ops per cell, rates 1% and 5%, all five fault kinds plus the
//! mixed cell and a fault-free baseline, under LAN and WAN models.
//!
//! Usage:
//! `cargo run --release -p parbox-bench --bin expG_chaos \
//!    [--scale BYTES] [--machines N] [--queries N] [--rate R] [--json PATH]`
//!
//! `--rate R` replaces the default rate sweep with a single injection
//! rate. `--json PATH` writes the cells as `BENCH_chaos.json` (the CI
//! workflow uploads it next to the expC–expF artifacts). The binary
//! asserts the ISSUE acceptance criteria: faults were actually injected
//! in the panic and wedge cells, **zero** `Complete` answers disagree
//! with the oracle anywhere, every cell recovers to all-correct answers
//! after the plan disarms (no process restart), and actor-outage p99
//! stays bounded.

// The experiment is named expG in the issue tracker; keep the binary name.
#![allow(non_snake_case)]

use parbox_bench::experiments::{expg_chaos, ExpGCell};
use parbox_bench::Scale;

fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn to_json(cells: &[ExpGCell], machines: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"expG_chaos\",\n");
    out.push_str(&format!("  \"machines\": {machines},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"network\": \"{}\", \"kind\": \"{}\", \"rate\": {}, \
             \"queries\": {}, \"updates\": {}, \"injected\": {}, \
             \"timeouts\": {}, \"retries\": {}, \"restarts\": {}, \
             \"complete\": {}, \"partial\": {}, \
             \"wrong_complete\": {}, \"wrong_partial\": {}, \
             \"recovery_p99_ms\": {:.3}, \"recovery_max_ms\": {:.3}, \
             \"recovered_after_disarm\": {}}}{}\n",
            c.network,
            c.kind,
            c.rate,
            c.queries,
            c.updates,
            c.injected,
            c.timeouts,
            c.retries,
            c.restarts,
            c.complete_answers,
            c.partial_answers,
            c.wrong_complete,
            c.wrong_partial,
            c.recovery_p99_ms,
            c.recovery_max_ms,
            c.recovered_after_disarm,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let scale = Scale::from_args();
    let machines: usize = flag("--machines").and_then(|v| v.parse().ok()).unwrap_or(6);
    let queries: usize = flag("--queries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(150);
    let rates: Vec<f64> = match flag("--rate").and_then(|v| v.parse().ok()) {
        Some(r) => vec![r],
        None => vec![0.01, 0.05],
    };
    let kinds = ["panic", "wedge", "delay", "drop", "crash", "mixed"];

    let cells = expg_chaos(scale, machines, queries, &rates, &kinds);
    println!(
        "Experiment G — chaos-hardened serving ({machines} machines, {queries} stream ops/cell, \
         rates {rates:?})"
    );
    println!(
        "  {:<4} {:<6} {:>5}  {:>4}/{:<4} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7} {:>12} {:>10}",
        "net",
        "kind",
        "rate",
        "ok",
        "part",
        "injected",
        "timeouts",
        "retries",
        "restarts",
        "wrong",
        "wrongP",
        "rec p99 (ms)",
        "recovered"
    );
    for c in &cells {
        println!(
            "  {:<4} {:<6} {:>5.2} {:>5}/{:<4} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7} {:>12.2} {:>10}",
            c.network,
            c.kind,
            c.rate,
            c.complete_answers,
            c.partial_answers,
            c.injected,
            c.timeouts,
            c.retries,
            c.restarts,
            c.wrong_complete,
            c.wrong_partial,
            c.recovery_p99_ms,
            c.recovered_after_disarm
        );
    }

    // ---- Acceptance ----------------------------------------------------
    let wrong: usize = cells.iter().map(|c| c.wrong_complete).sum();
    assert_eq!(
        wrong, 0,
        "acceptance: a Complete answer disagreed with the oracle"
    );
    for c in &cells {
        assert!(
            c.recovered_after_disarm,
            "acceptance: {}/{}@{} did not recover to all-correct answers after disarm",
            c.network, c.kind, c.rate
        );
        if matches!(c.kind.as_str(), "panic" | "wedge") && c.rate >= 0.01 {
            assert!(
                c.injected > 0,
                "acceptance: {}/{}@{} injected no faults",
                c.network,
                c.kind,
                c.rate
            );
        }
    }
    let rec_p99 = cells
        .iter()
        .map(|c| c.recovery_p99_ms)
        .fold(0.0f64, f64::max);
    assert!(
        rec_p99 < 2_000.0,
        "acceptance: actor-outage p99 unbounded ({rec_p99:.1} ms)"
    );
    println!(
        "  acceptance: zero wrong Complete answers, every cell recovered, \
         worst recovery p99 {rec_p99:.1} ms"
    );

    if let Some(path) = flag("--json") {
        std::fs::write(&path, to_json(&cells, machines))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("  json cells written to {path}");
    }
}

//! The paper's running example end-to-end: a distributed stock
//! portfolio, all six evaluation algorithms, and incremental maintenance
//! of a cached "price alert" view under live trades.
//!
//! Run with: `cargo run --example stock_portfolio`

// This file is an expA-era caller the deprecated HybridParBoX shim
// explicitly keeps compiling.
#![allow(deprecated)]

use parbox::core::{
    full_dist_parbox, hybrid_parbox, lazy_parbox, naive_centralized, naive_distributed, parbox,
    MaterializedView, Update,
};
use parbox::frag::{Forest, Placement, SiteId};
use parbox::net::{Cluster, NetworkModel};
use parbox::query::{compile, parse_query};
use parbox::xmark::{portfolio, PortfolioConfig};
use parbox::xml::FragmentId;

fn main() {
    // Generate a portfolio: 3 brokers × 2 markets × 4 stocks.
    let tree = portfolio(PortfolioConfig {
        brokers: 3,
        markets_per_broker: 2,
        stocks_per_market: 4,
        seed: 42,
    });

    // Fragment like the paper's Fig. 2: the second broker keeps its data
    // on its own servers (F1), and inside it the exchange requires its
    // market data to stay on the exchange's machines (F2). The third
    // broker's first market is also remote (F3).
    let mut forest = Forest::from_tree(tree);
    let f0 = forest.root_fragment();
    let broker2 = {
        let t = &forest.fragment(f0).tree;
        t.children(t.root()).nth(1).expect("second broker")
    };
    let f1 = forest.split(f0, broker2).unwrap();
    let market_in_f1 = {
        let t = &forest.fragment(f1).tree;
        t.descendants(t.root())
            .find(|&n| t.label_str(n) == "market")
            .unwrap()
    };
    let f2 = forest.split(f1, market_in_f1).unwrap();
    let market_in_f0 = {
        let t = &forest.fragment(f0).tree;
        t.descendants(t.root())
            .find(|&n| t.label_str(n) == "market")
            .unwrap()
    };
    let f3 = forest.split(f0, market_in_f0).unwrap();

    // Place: portfolio owner's desktop (S0), broker server (S1), the
    // exchange's server (S2) hosting both F2 and F3.
    let mut placement = Placement::new();
    placement.assign(f0, SiteId(0));
    placement.assign(f1, SiteId(1));
    placement.assign(f2, SiteId(2));
    placement.assign(f3, SiteId(2));
    let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());

    // The alert: has GOOG reached a selling price of 376 anywhere?
    let q = compile(
        &parse_query("[//stock[code/text() = \"GOOG\" and sell/text() = \"376\"]]").unwrap(),
    );

    println!("== all six algorithms, one query ==");
    for (name, out) in [
        ("ParBoX", parbox(&cluster, &q)),
        ("NaiveCentralized", naive_centralized(&cluster, &q)),
        ("NaiveDistributed", naive_distributed(&cluster, &q)),
        ("HybridParBoX", hybrid_parbox(&cluster, &q)),
        ("FullDistParBoX", full_dist_parbox(&cluster, &q)),
        ("LazyParBoX", lazy_parbox(&cluster, &q)),
    ] {
        println!(
            "{name:<18} answer={:<5} max-visits={} traffic={}B",
            out.answer,
            out.report.max_visits(),
            out.report.total_bytes()
        );
    }

    // Cache the alert as a materialized view and maintain it as trades
    // happen on the exchange's servers.
    println!("\n== incremental maintenance of the alert view ==");
    let (mut view, initial) =
        MaterializedView::materialize(&forest, &placement, NetworkModel::lan(), &q);
    println!(
        "materialized: answer={} ({} bytes)",
        view.answer(),
        initial.report.total_bytes()
    );

    // A trade on an unrelated stock: triplet unchanged, no re-solve.
    let market = forest.fragment(f2).tree.root();
    let rep = view
        .apply(
            &mut forest,
            &mut placement,
            Update::InsNode {
                frag: f2,
                parent: market,
                label: "tick".into(),
                text: Some("noise".into()),
            },
        )
        .unwrap();
    println!(
        "irrelevant tick:   answer={} changed={} traffic={}B",
        rep.answer,
        rep.answer_changed,
        rep.report.total_bytes()
    );

    // GOOG hits 376 on the exchange: one fragment re-evaluated, answer flips.
    view.apply(
        &mut forest,
        &mut placement,
        Update::InsNode {
            frag: f2,
            parent: market,
            label: "stock".into(),
            text: None,
        },
    )
    .unwrap();
    let new_stock = {
        let t = &forest.fragment(f2).tree;
        t.children(market).last().unwrap()
    };
    for (label, text) in [("code", "GOOG"), ("sell", "376")] {
        view.apply(
            &mut forest,
            &mut placement,
            Update::InsNode {
                frag: f2,
                parent: new_stock,
                label: label.into(),
                text: Some(text.into()),
            },
        )
        .unwrap();
    }
    println!("GOOG@376 listed:   answer={} (alert fires)", view.answer());
    assert!(view.answer());

    // The exchange archives that market into its own fragment.
    let rep2 = view
        .apply(
            &mut forest,
            &mut placement,
            Update::SplitFragments {
                frag: f2,
                node: new_stock,
                to_site: Some(SiteId(3)),
            },
        )
        .unwrap();
    println!(
        "archive split:     answer={} changed={} fragments={}",
        rep2.answer,
        rep2.answer_changed,
        forest.card()
    );
    assert!(view.answer(), "split must not lose the alert");
    let _ = FragmentId(0);
}

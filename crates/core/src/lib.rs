#![warn(missing_docs)]

//! # parbox-core
//!
//! The algorithms of *Using Partial Evaluation in Distributed Query
//! Evaluation* (Buneman, Cong, Fan, Kementsietsidis — VLDB 2006):
//!
//! * [`centralized_eval`] — the optimal `O(|T||q|)` single-traversal
//!   baseline (Section 2.2);
//! * [`naive_centralized`] / [`naive_distributed`] — the two naive
//!   distributed baselines (Section 3);
//! * [`parbox`] — the **ParBoX** partial-evaluation algorithm (Fig. 3);
//! * [`hybrid_parbox`], [`full_dist_parbox`], [`lazy_parbox`] — its
//!   variants (Section 4);
//! * [`MaterializedView`] — incremental maintenance of Boolean XPath
//!   views under data and fragmentation updates (Section 5).

pub mod aggregate;
pub mod algorithms;
pub mod eval;
pub mod selection;
pub mod views;

pub use aggregate::{
    count_centralized, count_distributed, sum_centralized, sum_distributed, AggregateOutcome,
};
pub use algorithms::{
    full_dist_parbox, hybrid_parbox, hybrid_prefers_parbox, lazy_parbox, naive_centralized,
    naive_distributed, parbox, query_wire_size, resolved_triplet_wire_size, EvalOutcome,
};
pub use eval::{
    bottom_up, bottom_up_formula_only, centralized_eval, centralized_eval_counted, CentralizedRun,
    FragmentRun,
};
pub use selection::{select_centralized, select_distributed, SelectionOutcome};
pub use views::{MaterializedView, Update, UpdateReport};

//! Label (tag-name) interning.
//!
//! XML documents use a small vocabulary of element names, so every tree
//! interns its labels into a [`LabelTable`] and nodes store a compact
//! [`LabelId`]. Query evaluation resolves each query label to a `LabelId`
//! once per tree and then compares integers in the hot loop instead of
//! strings (see the centralized evaluator in `parbox-core`).

use std::collections::HashMap;

/// Compact identifier of an interned label within one [`LabelTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelId(pub(crate) u32);

impl LabelId {
    /// Index form, for vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interner mapping label strings to dense [`LabelId`]s.
///
/// Deliberately per-tree rather than global: fragments are shipped between
/// (simulated) sites, and a per-tree table keeps trees self-contained and
/// serializable without shared state.
#[derive(Debug, Clone, Default)]
pub struct LabelTable {
    names: Vec<Box<str>>,
    index: HashMap<Box<str>, LabelId>,
}

impl LabelTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id. Idempotent.
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = LabelId(self.names.len() as u32);
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.index.insert(boxed, id);
        id
    }

    /// Looks up a label id without interning.
    pub fn lookup(&self, name: &str) -> Option<LabelId> {
        self.index.get(name).copied()
    }

    /// Returns the string for an id.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this table.
    pub fn resolve(&self, id: LabelId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct labels interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no labels have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (LabelId(i as u32), n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = LabelTable::new();
        let a = t.intern("stock");
        let b = t.intern("stock");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_resolvable() {
        let mut t = LabelTable::new();
        let ids: Vec<_> = ["a", "b", "c"].iter().map(|s| t.intern(s)).collect();
        assert_eq!(ids[0].index(), 0);
        assert_eq!(ids[1].index(), 1);
        assert_eq!(ids[2].index(), 2);
        assert_eq!(t.resolve(ids[1]), "b");
        assert_eq!(t.lookup("c"), Some(ids[2]));
        assert_eq!(t.lookup("zzz"), None);
    }

    #[test]
    fn iter_returns_interning_order() {
        let mut t = LabelTable::new();
        t.intern("x");
        t.intern("y");
        let got: Vec<_> = t.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(got, vec!["x", "y"]);
    }

    #[test]
    fn empty_table_reports_empty() {
        let t = LabelTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}

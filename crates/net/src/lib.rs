#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

//! # parbox-net
//!
//! The simulated distributed substrate of this ParBoX reproduction.
//!
//! The paper evaluated on ten Linux machines over a LAN. Here, each
//! *site* is a worker thread that really evaluates its fragments in
//! parallel ([`run_sites_parallel`]), while network costs are *modeled*
//! ([`NetworkModel`]): every message is recorded in a [`RunReport`] with
//! its exact payload size, and modeled elapsed time combines measured
//! per-site compute with latency + bandwidth terms. See DESIGN.md §5 for
//! why this substitution preserves the paper's experimental shapes.
//!
//! A [`Cluster`] bundles a fragmented document, its placement and a cost
//! model — the input every algorithm in `parbox-core` takes. For batched
//! evaluation, [`BatchRound`] enforces the single-visit discipline: one
//! request and one triplet envelope per site per batch, however many
//! queries the batch holds. For *serving* traffic, the [`engine`] module
//! replaces per-query scoped threads with a [`SitePool`] of persistent
//! site workers — one resident actor per site, owning its fragments and
//! a fingerprint-keyed triplet cache. Residency brings failure with it:
//! the [`fault`] module supplies deterministic fault injection
//! ([`FaultPlan`]) and the supervision policy ([`SupervisorConfig`])
//! behind [`SitePool::eval_round_supervised`] — deadlines, retries with
//! backoff, actor restart, and authoritative fragment re-seeding.
//!
//! ```
//! use parbox_net::{BatchRound, MessageKind, NetworkModel, SiteId};
//!
//! // A LAN message costs latency plus payload over bandwidth.
//! let lan = NetworkModel::lan();
//! assert!(lan.transfer_time(1_000) < lan.transfer_time(1_000_000));
//!
//! // One batched round: visit both sites once, collect one envelope each.
//! let mut round = BatchRound::new(SiteId(0));
//! for s in [SiteId(0), SiteId(1)] {
//!     round.visit(s, 120).unwrap();
//! }
//! round.reply(SiteId(1), 48).unwrap();
//! // A second visit would break the paper's guarantee — and is rejected.
//! assert!(round.visit(SiteId(1), 120).is_err());
//! let report = round.finish();
//! assert_eq!(report.max_visits(), 1);
//! assert_eq!(report.bytes_of_kind(MessageKind::Envelope), 48);
//! ```

mod batch;
mod cluster;
pub mod engine;
mod exec;
pub mod fault;
mod metrics;
mod model;

pub use batch::{BatchProtocolError, BatchRound};
pub use cluster::Cluster;
pub use engine::{
    BuildFn, DeltaKernel, DeltaState, EvalFn, EvalReply, FragmentEval, PatchFn, RepairFn,
    RepairOutcome, RepairReply, RepairedEval, SiteCacheStats, SiteDeployment, SitePool,
    SupervisedRound,
};
pub use exec::{run_sites_parallel, run_sites_sequential, SiteRun};
pub use fault::{FaultContext, FaultKind, FaultPlan, FaultRates, InjectedFault, SupervisorConfig};
pub use metrics::{
    CacheEfficacy, CostEstimate, FaultSummary, Message, MessageKind, PlanSummary, RepairEfficacy,
    RunReport, SiteReport,
};
pub use model::NetworkModel;

// Re-exported so downstream users need not depend on parbox-frag for the
// common case of addressing sites.
pub use parbox_frag::SiteId;

//! Data-selection XPath queries — the extension sketched in the paper's
//! conclusions: "processing data selection XPath queries with the
//! performance guarantee that each site is visited at most twice".
//!
//! A selection query returns the *set of nodes* reached via a path. The
//! evaluation reuses the Boolean machinery end-to-end:
//!
//! 1. **Visit 1** (identical to ParBoX): every site partially evaluates
//!    the qualifier program over its fragments; the coordinator solves
//!    the Boolean equation system, fully resolving every fragment's
//!    triplet.
//! 2. **Visit 2**: the coordinator walks the source tree top-down in
//!    depth waves. Each fragment's site receives the resolved triplets
//!    of its sub-fragments plus the automaton state set arriving at its
//!    fragment root; it runs one local bottom-up pass (qualifier bits
//!    per node, with virtual nodes looked up from the resolved triplets)
//!    and one top-down pass (state propagation), returning the selected
//!    nodes and the state sets flowing into each virtual node.
//!
//! With one fragment per site (the paper's experimental setting) every
//! site is visited exactly twice; in general a site is visited once in
//! phase 1 plus once per depth wave containing one of its fragments.

use crate::algorithms::{query_wire_size, resolved_triplet_wire_size};
use crate::eval::bitset::BitSet;
use crate::eval::bottom_up;
use parbox_bool::{triplet_dag_wire_size, EquationSystem, ResolvedTriplet};
use parbox_net::{run_sites_parallel, Cluster, MessageKind, RunReport};
use parbox_query::{Op, SelStep, SelectionProgram};
use parbox_xml::{FragmentId, NodeId, Tree};
use std::collections::HashMap;
use std::time::Instant;

/// Result of a distributed selection.
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// Selected nodes, tagged with the fragment that owns them, in
    /// document order within each fragment.
    pub nodes: Vec<(FragmentId, NodeId)>,
    /// Full cost accounting (both visits).
    pub report: RunReport,
}

/// Selects, on a whole (unfragmented) tree, every node reached via the
/// selection program's path from the root. The correctness oracle for
/// [`select_distributed`].
pub fn select_centralized(tree: &Tree, sel: &SelectionProgram) -> Vec<NodeId> {
    let empty = HashMap::new();
    let pass = fragment_select_pass(tree, sel, &empty, 1u64);
    pass.selected
}

/// Distributed selection over a fragmented tree.
pub fn select_distributed(cluster: &Cluster<'_>, sel: &SelectionProgram) -> SelectionOutcome {
    let wall = Instant::now();
    let mut report = RunReport::new();
    let coord = cluster.coordinator();
    let st = &cluster.source_tree;
    let sites = cluster.sites();
    let m = sel.quals.len();

    // ---- Visit 1: ParBoX over the qualifier program. --------------------
    let qsize = query_wire_size(&sel.quals);
    for &s in &sites {
        report.record_visit(s);
        if s != coord {
            report.record_message(coord, s, qsize, MessageKind::Query);
        }
    }
    let runs = run_sites_parallel(&sites, |s| {
        cluster
            .fragments_at(s)
            .into_iter()
            .map(|f| (f, bottom_up(&cluster.forest.fragment(f).tree, &sel.quals)))
            .collect::<Vec<_>>()
    });
    let mut sys = EquationSystem::new();
    for run in runs {
        report.record_compute(run.site, run.elapsed);
        for (frag, frun) in run.output {
            report.record_work(run.site, frun.work_units);
            if run.site != coord {
                report.record_message(
                    run.site,
                    coord,
                    triplet_dag_wire_size(&frun.triplet),
                    MessageKind::Triplet,
                );
            }
            sys.insert(frag, frun.triplet);
        }
    }
    let resolved = sys.solve(st.postorder()).expect("complete bottom-up order");

    // ---- Visit 2: top-down state propagation in depth waves. ------------
    let mut nodes: Vec<(FragmentId, NodeId)> = Vec::new();
    let mut incoming: HashMap<FragmentId, u64> = HashMap::new();
    incoming.insert(st.root(), 1u64); // state 0 arrives at the root
    for depth in 0..=st.max_depth() {
        let wave = st.fragments_at_depth(depth);
        let mut wave_sites: Vec<parbox_net::SiteId> = Vec::new();
        for &frag in &wave {
            let Some(&mask) = incoming.get(&frag) else {
                continue;
            };
            let site = st.site_of(frag);
            if !wave_sites.contains(&site) {
                wave_sites.push(site);
                report.record_visit(site);
            }
            // Request: sub-fragment triplets + the incoming state mask.
            let entry = st.entry(frag);
            if site != coord {
                let bytes = 8 + entry.children.len() * resolved_triplet_wire_size(m);
                report.record_message(coord, site, bytes, MessageKind::Control);
            }
            // Local work at the fragment's site.
            let children: HashMap<FragmentId, &ResolvedTriplet> =
                entry.children.iter().map(|&c| (c, &resolved[&c])).collect();
            let start = Instant::now();
            let tree = &cluster.forest.fragment(frag).tree;
            let pass = fragment_select_pass(tree, sel, &children, mask);
            report.record_compute(site, start.elapsed());
            report.record_work(site, pass.work_units);
            // Response: selected node ids + per-virtual-node state masks.
            if site != coord {
                let bytes = 4 + 8 * pass.selected.len() + 8 * pass.out_masks.len();
                report.record_message(site, coord, bytes, MessageKind::Data);
            }
            for n in pass.selected {
                nodes.push((frag, n));
            }
            for (sub, sub_mask) in pass.out_masks {
                if sub_mask != 0 {
                    incoming.insert(sub, sub_mask);
                }
            }
        }
    }

    report.elapsed_wall_s = wall.elapsed().as_secs_f64();
    report.elapsed_model_s = report.total_compute_s()
        + cluster
            .model
            .shared_link_time(report.messages.iter().map(|msg| msg.bytes));
    SelectionOutcome { nodes, report }
}

struct SelectPass {
    selected: Vec<NodeId>,
    out_masks: Vec<(FragmentId, u64)>,
    work_units: u64,
}

/// One fragment-local selection pass: a bottom-up sweep computing the
/// qualifier bits per node (virtual nodes read from their sub-fragment's
/// resolved triplet), then a top-down sweep propagating automaton state
/// sets from `root_mask`.
fn fragment_select_pass(
    tree: &Tree,
    sel: &SelectionProgram,
    children: &HashMap<FragmentId, &ResolvedTriplet>,
    root_mask: u64,
) -> SelectPass {
    let resolved = sel.quals.resolve(tree.labels());
    let m = resolved.len();
    let k = sel.steps.len();
    // Per-node V bits of the qualifier sub-queries actually referenced by
    // steps, packed one word per node per referenced qual.
    let qual_ids = sel.qual_ids();
    let mut qual_bits: Vec<u64> = vec![0; tree.arena_len()];
    let mut work: u64 = 0;

    // Bottom-up: compute V/CV/DV vectors per node, keep only qual bits.
    // (Vectors live on an explicit stack; O(depth) memory. Packed into
    // `u64` words so child accumulation runs through the word-parallel
    // kernels.)
    struct Frame {
        node: NodeId,
        child_idx: usize,
        cv: BitSet,
        dv: BitSet,
    }
    let mut stack = vec![Frame {
        node: tree.root(),
        child_idx: 0,
        cv: BitSet::zeros(m),
        dv: BitSet::zeros(m),
    }];
    let mut done: Option<(BitSet, BitSet)> = None;
    loop {
        let frame = stack.last_mut().expect("non-empty until break");
        if let Some((v_w, dv_w)) = done.take() {
            frame.cv.or_assign(&v_w);
            frame.dv.or_assign(&dv_w);
        }
        let kids = tree.node(frame.node).child_ids();
        if frame.child_idx < kids.len() {
            let child = kids[frame.child_idx];
            frame.child_idx += 1;
            stack.push(Frame {
                node: child,
                child_idx: 0,
                cv: BitSet::zeros(m),
                dv: BitSet::zeros(m),
            });
            continue;
        }
        let Frame {
            node, cv, mut dv, ..
        } = stack.pop().expect("peeked");
        work += m as u64;
        let n = tree.node(node);
        let v: BitSet = if let Some(frag) = n.kind.fragment() {
            // Virtual node: values are the sub-fragment's resolved vectors.
            let r = children
                .get(&frag)
                .unwrap_or_else(|| panic!("missing resolved triplet for {frag}"));
            dv = BitSet::from_bools(&r.dv);
            BitSet::from_bools(&r.v)
        } else {
            let mut v = BitSet::zeros(m);
            // Stays per-bit: `Op::Desc(j)` reads `dv[j]` updated earlier
            // in this very loop (topological sub-query order), so the DV
            // fold cannot be deferred to a word-parallel pass.
            for (i, op) in resolved.ops.iter().enumerate() {
                let value = match op {
                    Op::True => true,
                    Op::LabelIs(l) => Some(n.label) == *l,
                    Op::TextIs(s) => n.text.as_deref() == Some(s.as_ref()),
                    Op::Child(j) => cv.get(*j as usize),
                    Op::Desc(j) => dv.get(*j as usize),
                    Op::Or(a, b) => v.get(*a as usize) || v.get(*b as usize),
                    Op::And(a, b) => v.get(*a as usize) && v.get(*b as usize),
                    Op::Not(a) => !v.get(*a as usize),
                };
                v.set(i, value);
                if value {
                    dv.set(i, true);
                }
            }
            v
        };
        // Record the qualifier bits this node exposes to the automaton.
        let mut bits = 0u64;
        for (pos, &qid) in qual_ids.iter().enumerate() {
            if v.get(qid as usize) {
                bits |= 1 << pos;
            }
        }
        qual_bits[node.index()] = bits;
        if stack.is_empty() {
            break;
        }
        done = Some((v, dv));
    }

    // Map step index → position in qual_ids (for bit lookups).
    let qual_pos: Vec<usize> = {
        let mut next = 0usize;
        sel.steps
            .iter()
            .map(|s| {
                if matches!(s, SelStep::Qual(_)) {
                    let p = next;
                    next += 1;
                    p
                } else {
                    usize::MAX
                }
            })
            .collect()
    };

    // Top-down: propagate state masks; virtual nodes terminate locally
    // and emit the raw mask for their sub-fragment.
    let mut selected = Vec::new();
    let mut out_masks = Vec::new();
    let accept = 1u64 << k;
    let mut down: Vec<(NodeId, u64)> = vec![(tree.root(), root_mask)];
    while let Some((node, raw)) = down.pop() {
        work += k as u64 + 1;
        if let Some(frag) = tree.node(node).kind.fragment() {
            out_masks.push((frag, raw));
            continue;
        }
        // ε-closure at this node (one ascending pass suffices: additions
        // only ever set higher states).
        let mut mask = raw;
        for (i, step) in sel.steps.iter().enumerate() {
            if mask & (1 << i) == 0 {
                continue;
            }
            match step {
                SelStep::Qual(_) => {
                    if qual_bits[node.index()] & (1 << qual_pos[i]) != 0 {
                        mask |= 1 << (i + 1);
                    }
                }
                SelStep::DescOrSelf => {
                    mask |= 1 << (i + 1);
                }
                SelStep::Child => {}
            }
        }
        if mask & accept != 0 {
            selected.push(node);
        }
        // Edge transitions to children.
        let mut child_raw = 0u64;
        for (i, step) in sel.steps.iter().enumerate() {
            if mask & (1 << i) == 0 {
                continue;
            }
            match step {
                SelStep::Child => child_raw |= 1 << (i + 1),
                SelStep::DescOrSelf => child_raw |= 1 << i,
                SelStep::Qual(_) => {}
            }
        }
        if child_raw != 0 {
            // Reverse push keeps document order in the output.
            for &c in tree.node(node).child_ids().iter().rev() {
                down.push((c, child_raw));
            }
        }
    }
    // The reversed child pushes make the DFS visit in document order, but
    // sort anyway so the contract is independent of traversal details.
    selected.sort_by_key(|n| n.index());

    SelectPass {
        selected,
        out_masks,
        work_units: work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbox_frag::{strategies, Forest, Placement};
    use parbox_net::NetworkModel;
    use parbox_query::{compile_selection, parse_query};

    fn sel(src: &str) -> SelectionProgram {
        compile_selection(&parse_query(src).unwrap()).unwrap()
    }

    fn labels_of(tree: &Tree, nodes: &[NodeId]) -> Vec<String> {
        nodes
            .iter()
            .map(|&n| tree.label_str(n).to_string())
            .collect()
    }

    #[test]
    fn centralized_selects_descendants() {
        let tree = Tree::parse("<r><a><b/><b><b/></b></a><b/></r>").unwrap();
        let got = select_centralized(&tree, &sel("[//b]"));
        assert_eq!(got.len(), 4);
        assert!(labels_of(&tree, &got).iter().all(|l| l == "b"));
    }

    #[test]
    fn centralized_child_vs_descendant() {
        let tree = Tree::parse("<r><a><c/></a><c/></r>").unwrap();
        assert_eq!(select_centralized(&tree, &sel("[c]")).len(), 1);
        assert_eq!(select_centralized(&tree, &sel("[//c]")).len(), 2);
        assert_eq!(select_centralized(&tree, &sel("[a/c]")).len(), 1);
        assert_eq!(select_centralized(&tree, &sel("[*/c]")).len(), 1);
    }

    #[test]
    fn centralized_with_qualifier() {
        let tree = Tree::parse(
            r#"<r><stock><code>GOOG</code></stock><stock><code>YHOO</code></stock></r>"#,
        )
        .unwrap();
        let got = select_centralized(&tree, &sel("[//stock[code/text() = \"GOOG\"]]"));
        assert_eq!(got.len(), 1);
        let got = select_centralized(&tree, &sel("[//stock]"));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn root_selection_cases() {
        let tree = Tree::parse("<r><a/></r>").unwrap();
        // ε selects exactly the root.
        let got = select_centralized(&tree, &sel("[.]"));
        assert_eq!(got, vec![tree.root()]);
        // label()=r also selects the root; label()=z selects nothing.
        assert_eq!(select_centralized(&tree, &sel("[label() = r]")).len(), 1);
        assert_eq!(select_centralized(&tree, &sel("[label() = z]")).len(), 0);
        // //a includes descendants only (not the root).
        assert_eq!(select_centralized(&tree, &sel("[//a]")).len(), 1);
    }

    #[test]
    fn text_selection() {
        let tree =
            Tree::parse("<r><code>GOOG</code><code>YHOO</code><name>GOOG</name></r>").unwrap();
        let got = select_centralized(&tree, &sel("[//code/text() = \"GOOG\"]"));
        assert_eq!(got.len(), 1);
        assert_eq!(labels_of(&tree, &got), vec!["code"]);
    }

    fn fragmented_doc() -> (Forest, Placement) {
        let tree = Tree::parse(
            r#"<r>
                 <div><stock><code>GOOG</code></stock><pad/></div>
                 <div><stock><code>YHOO</code></stock>
                      <deep><stock><code>GOOG</code></stock></deep></div>
                 <stock><code>GOOG</code></stock>
               </r>"#,
        )
        .unwrap();
        let mut forest = Forest::from_tree(tree);
        let root = forest.root_fragment();
        strategies::star(&mut forest, root).unwrap();
        // Further split the deep subtree out of the second div.
        let f2 = forest
            .fragment_ids()
            .find(|&f| {
                let t = &forest.fragment(f).tree;
                t.descendants(t.root()).any(|n| t.label_str(n) == "deep")
            })
            .unwrap();
        let deep = {
            let t = &forest.fragment(f2).tree;
            t.descendants(t.root())
                .find(|&n| t.label_str(n) == "deep")
                .unwrap()
        };
        forest.split(f2, deep).unwrap();
        let placement = Placement::one_per_fragment(&forest);
        (forest, placement)
    }

    #[test]
    fn distributed_matches_centralized() {
        let (forest, placement) = fragmented_doc();
        let whole = forest.reassemble();
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        for src in [
            "[//stock]",
            "[//stock[code/text() = \"GOOG\"]]",
            "[//code]",
            "[stock]",
            "[//deep//code]",
            "[//nothing]",
        ] {
            let program = sel(src);
            let central = select_centralized(&whole, &program);
            let distributed = select_distributed(&cluster, &program);
            assert_eq!(
                distributed.nodes.len(),
                central.len(),
                "count mismatch for {src}"
            );
            // Same multiset of labels (node ids differ across forests).
            let mut a: Vec<String> = central
                .iter()
                .map(|&n| whole.label_str(n).to_string())
                .collect();
            let mut b: Vec<String> = distributed
                .nodes
                .iter()
                .map(|&(f, n)| forest.fragment(f).tree.label_str(n).to_string())
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "label mismatch for {src}");
        }
    }

    #[test]
    fn each_site_visited_at_most_twice() {
        let (forest, placement) = fragmented_doc();
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let out = select_distributed(&cluster, &sel("[//stock]"));
        for (site, rep) in out.report.sites() {
            assert!(rep.visits <= 2, "site {site} visited {} times", rep.visits);
        }
    }

    #[test]
    fn skipped_subtrees_receive_no_second_visit() {
        // A child-only path never descends past depth 1 of the document,
        // so deep fragments get no phase-2 visit at all.
        let (forest, placement) = fragmented_doc();
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let out = select_distributed(&cluster, &sel("[stock]"));
        assert_eq!(out.nodes.len(), 1);
        // The `deep` fragment's site is visited only once (phase 1).
        let deep_frag = forest
            .fragment_ids()
            .find(|&f| {
                let t = &forest.fragment(f).tree;
                t.label_str(t.root()) == "deep"
            })
            .unwrap();
        let deep_site = placement.site_of(deep_frag);
        assert_eq!(out.report.site(deep_site).visits, 1);
    }

    #[test]
    fn selection_traffic_carries_results_not_fragments() {
        let (forest, placement) = fragmented_doc();
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let out = select_distributed(&cluster, &sel("[//stock]"));
        // Data messages carry only node ids (8B each + 4B header).
        let data = out.report.bytes_of_kind(MessageKind::Data);
        assert!(data < 200, "result bytes should be tiny, got {data}");
    }
}

//! `parbox-cli` — command-line front end for the ParBoX engine.
//!
//! ```text
//! parbox-cli compile  '<query>'                     show normal form + QList
//! parbox-cli query    <file.xml> '<query>'          Boolean answer (centralized)
//! parbox-cli select   <file.xml> '<path query>'     list matching nodes
//! parbox-cli run      <file.xml> '<query>' [--fragments N] [--sites K] [--algo NAME]
//!                                                   fragment + evaluate distributed
//! parbox-cli batch    <file.xml> '<q1>' '<q2>' … [--fragments N] [--sites K]
//!                                                   evaluate a whole batch in one round
//! parbox-cli serve    <file.xml> [--fragments N] [--sites K] [--ops N] [--seed S]
//!                                                   drive a mixed workload through the
//!                                                   resident serving engine
//! parbox-cli generate --bytes N [--seed S]          emit an XMark document to stdout
//! ```

use parbox::core::{
    centralized_eval, count_centralized, full_dist_parbox, lazy_parbox, naive_centralized,
    naive_distributed, parbox, run_batch, select_centralized, sum_centralized,
};
use parbox::core::{Engine, EngineConfig, PlanContext, Planner};
use parbox::frag::{strategies, Forest, ForestStats, Placement};
use parbox::net::{Cluster, FaultPlan, NetworkModel, SupervisorConfig};
use parbox::query::{compile, compile_batch, compile_selection, normalize, parse_query};
use parbox::xmark::{drive_stream, generate, mixed_workload, MixedConfig, XmarkConfig};
use parbox::xml::Tree;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("select") => cmd_select(&args[1..]),
        Some("count") => cmd_aggregate(&args[1..], true),
        Some("sum") => cmd_aggregate(&args[1..], false),
        Some("run") => cmd_run(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
parbox-cli — distributed Boolean XPath via partial evaluation (VLDB 2006)

USAGE:
  parbox-cli compile  '<query>'
  parbox-cli query    <file.xml> '<query>'
  parbox-cli select   <file.xml> '<path query>'
  parbox-cli count    <file.xml> '<predicate>'
  parbox-cli sum      <file.xml> '<predicate>'
  parbox-cli run      <file.xml> '<query>' [--fragments N] [--sites K]
                      [--strategy NAME|all|auto] [--network lan|wan|infinite]
  parbox-cli explain  <file.xml> '<query>' [--fragments N] [--sites K]
                      [--network lan|wan|infinite]
  parbox-cli batch    <file.xml> '<q1>' '<q2>' ... [--fragments N] [--sites K]
  parbox-cli serve    <file.xml> [--fragments N] [--sites K] [--ops N] [--seed S] [--batch N]
                      [--fault-plan SPEC] [--deadline-ms N] [--no-delta]
  parbox-cli generate --bytes N [--seed S]

Fault spec: comma-separated kind:rate pairs, e.g. --fault-plan panic:0.01,wedge:0.02
            (kinds: panic wedge delay drop crash; chaos runs print restart/retry counters)
Query syntax (XBL): [//stock[code/text() = \"GOOG\" and sell/text() = \"376\"]]
Strategies: ParBoX BatchParBoX NaiveCentralized NaiveDistributed FullDistParBoX LazyParBoX
            auto — the cost-based planner picks per query (see `explain`)
(--algo remains an alias of --strategy.)
";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        out.push(a);
    }
    out
}

fn load_tree(path: &str) -> Result<Tree, String> {
    let xml = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Tree::parse(&xml).map_err(|e| format!("parsing {path}: {e}"))
}

fn parse_arg_query(src: &str) -> Result<parbox::query::Query, String> {
    parse_query(src).map_err(|e| format!("query syntax: {e}"))
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let [src] = positional(args)[..] else {
        return Err("usage: parbox-cli compile '<query>'".into());
    };
    let q = parse_arg_query(src)?;
    println!("query:       {q}");
    println!("normal form: {}", normalize(&q));
    let c = compile(&q);
    println!("QList ({} sub-queries):\n{c}", c.len());
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let [file, src] = positional(args)[..] else {
        return Err("usage: parbox-cli query <file.xml> '<query>'".into());
    };
    let tree = load_tree(file)?;
    let q = compile(&parse_arg_query(src)?);
    let run = parbox::core::centralized_eval_counted(&tree, &q);
    println!("{}", run.answer);
    eprintln!(
        "({} nodes × {} sub-queries = {} work units)",
        tree.len(),
        q.len(),
        run.work_units
    );
    Ok(())
}

fn cmd_select(args: &[String]) -> Result<(), String> {
    let [file, src] = positional(args)[..] else {
        return Err("usage: parbox-cli select <file.xml> '<path query>'".into());
    };
    let tree = load_tree(file)?;
    let program = compile_selection(&parse_arg_query(src)?).map_err(|e| e.to_string())?;
    let nodes = select_centralized(&tree, &program);
    for &n in &nodes {
        // Print a root-to-node label path plus any text.
        let mut path: Vec<&str> = tree.ancestors(n).map(|a| tree.label_str(a)).collect();
        path.reverse();
        path.push(tree.label_str(n));
        let text = tree.node(n).text.as_deref().unwrap_or("");
        println!(
            "/{}{}{}",
            path.join("/"),
            if text.is_empty() { "" } else { " = " },
            text
        );
    }
    eprintln!("({} nodes selected)", nodes.len());
    Ok(())
}

fn cmd_aggregate(args: &[String], count: bool) -> Result<(), String> {
    let [file, src] = positional(args)[..] else {
        return Err("usage: parbox-cli count|sum <file.xml> '<predicate>'".into());
    };
    let tree = load_tree(file)?;
    let q = compile(&parse_arg_query(src)?);
    if count {
        println!("{}", count_centralized(&tree, &q));
    } else {
        println!("{}", sum_centralized(&tree, &q));
    }
    Ok(())
}

/// Parses `--network lan|wan|infinite` (default: lan).
fn network_flag(args: &[String]) -> Result<NetworkModel, String> {
    match flag(args, "--network").as_deref() {
        None | Some("lan") => Ok(NetworkModel::lan()),
        Some("wan") => Ok(NetworkModel::wan()),
        Some("infinite") => Ok(NetworkModel::infinite()),
        Some(other) => Err(format!(
            "unknown network model {other:?} (lan|wan|infinite)"
        )),
    }
}

/// Fragments `file` and deploys it for `run` / `explain`.
fn deploy(file: &str, args: &[String]) -> Result<(Forest, Placement, NetworkModel, usize), String> {
    let fragments: usize = flag(args, "--fragments")
        .map(|v| v.parse().unwrap_or(4))
        .unwrap_or(4);
    let sites: u32 = flag(args, "--sites")
        .map(|v| v.parse().unwrap_or(fragments as u32))
        .unwrap_or(fragments as u32);
    let model = network_flag(args)?;
    let tree = load_tree(file)?;
    let mut forest = Forest::from_tree(tree);
    strategies::fragment_evenly(&mut forest, fragments).map_err(|e| format!("fragmenting: {e}"))?;
    let placement = Placement::round_robin(&forest, sites.max(1));
    Ok((forest, placement, model, fragments))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [file, src] = pos[..] else {
        return Err(
            "usage: parbox-cli run <file.xml> '<query>' [--fragments N] [--sites K] \
                    [--strategy NAME|all|auto] [--network lan|wan|infinite]"
                .into(),
        );
    };
    let strategy = flag(args, "--strategy")
        .or_else(|| flag(args, "--algo"))
        .unwrap_or_else(|| "all".into());

    let (forest, placement, model, _) = deploy(file, args)?;
    let q = compile(&parse_arg_query(src)?);
    let expected = centralized_eval(&forest.reassemble(), &q);
    let cluster =
        Cluster::try_new(&forest, &placement, model).map_err(|e| format!("deploying: {e}"))?;
    println!(
        "document fragmented into {} fragments over {} site(s); centralized answer: {expected}",
        forest.card(),
        placement.sites().len()
    );
    println!(
        "{:<22} {:>7} {:>11} {:>12} {:>12} {:>12}",
        "strategy", "answer", "max visits", "traffic (B)", "work units", "modeled (s)"
    );
    let names: Vec<&str> = if strategy == "all" {
        vec![
            "ParBoX",
            "NaiveCentralized",
            "NaiveDistributed",
            "auto",
            "FullDistParBoX",
            "LazyParBoX",
        ]
    } else {
        vec![strategy.as_str()]
    };
    for name in names {
        let out = match name {
            "ParBoX" => parbox(&cluster, &q),
            "NaiveCentralized" => naive_centralized(&cluster, &q),
            "NaiveDistributed" => naive_distributed(&cluster, &q),
            "FullDistParBoX" => full_dist_parbox(&cluster, &q),
            "LazyParBoX" => lazy_parbox(&cluster, &q),
            "BatchParBoX" => {
                use parbox::core::plan::{BatchExec, Executor as _};
                BatchExec.execute(&cluster, &q)
            }
            "auto" | "Auto" => parbox::core::plan_run(&cluster, &q),
            "HybridParBoX" => {
                // expA-era alias, kept working through the shim.
                #[allow(deprecated)]
                let out = parbox::core::hybrid_parbox(&cluster, &q);
                out
            }
            other => return Err(format!("unknown strategy {other:?}")),
        };
        let label = match &out.report.planned {
            Some(p) if name == "auto" || name == "Auto" => format!("auto→{}", p.strategy),
            _ => out.algorithm.to_string(),
        };
        println!(
            "{:<22} {:>7} {:>11} {:>12} {:>12} {:>12.6}",
            label,
            out.answer,
            out.report.max_visits(),
            out.report.total_bytes(),
            out.report.total_work(),
            out.report.elapsed_model_s
        );
        if let Some(p) = &out.report.planned {
            if name == "auto" || name == "Auto" {
                println!(
                    "  planner: chose {} of {} candidates (predicted {} visits, {} msgs, {} B, {:.6}s)",
                    p.strategy,
                    p.candidates,
                    p.estimate.visits,
                    p.estimate.messages,
                    p.estimate.traffic_bytes,
                    p.estimate.modeled_s
                );
            }
        }
        if out.answer != expected {
            return Err(format!("{name} disagreed with the centralized answer!"));
        }
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [file, src] = pos[..] else {
        return Err(
            "usage: parbox-cli explain <file.xml> '<query>' [--fragments N] [--sites K] \
                    [--network lan|wan|infinite]"
                .into(),
        );
    };
    let (forest, placement, model, _) = deploy(file, args)?;
    let q = compile(&parse_arg_query(src)?);
    let cluster =
        Cluster::try_new(&forest, &placement, model).map_err(|e| format!("deploying: {e}"))?;
    let stats = ForestStats::compute(&forest, &placement);
    let cx = PlanContext::new(&cluster, &q, &stats);
    let planner = Planner::standard();
    let choice = planner.choose(&cx);
    println!(
        "{} fragments over {} site(s), |QList| = {}, network {}: candidate estimates",
        stats.card(),
        stats.site_count(),
        q.len(),
        flag(args, "--network").unwrap_or_else(|| "lan".into()),
    );
    print!("{}", choice.explain);
    println!(
        "planner chooses {} (predicted {:.6}s modeled time)",
        choice.summary.strategy, choice.summary.estimate.modeled_s
    );
    Ok(())
}

fn cmd_batch(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let Some((&file, queries)) = pos.split_first() else {
        return Err(
            "usage: parbox-cli batch <file.xml> '<q1>' '<q2>' ... [--fragments N] [--sites K]"
                .into(),
        );
    };
    if queries.is_empty() {
        return Err("batch needs at least one query".into());
    }
    let fragments: usize = flag(args, "--fragments")
        .map(|v| v.parse().unwrap_or(4))
        .unwrap_or(4);
    let sites: u32 = flag(args, "--sites")
        .map(|v| v.parse().unwrap_or(fragments as u32))
        .unwrap_or(fragments as u32);

    let tree = load_tree(file)?;
    let parsed = queries
        .iter()
        .map(|src| parse_arg_query(src))
        .collect::<Result<Vec<_>, _>>()?;
    let batch = compile_batch(&parsed);

    let mut forest = Forest::from_tree(tree);
    strategies::fragment_evenly(&mut forest, fragments).map_err(|e| format!("fragmenting: {e}"))?;
    let placement = Placement::round_robin(&forest, sites.max(1));
    let model = NetworkModel::lan();
    let cluster =
        Cluster::try_new(&forest, &placement, model).map_err(|e| format!("deploying: {e}"))?;

    let out = run_batch(&cluster, &batch);
    let compiled: Vec<_> = parsed.iter().map(compile).collect();
    let summed: usize = compiled.iter().map(|c| c.len()).sum();
    println!(
        "batch of {} queries — merged QList {} (vs {} compiled separately), {} fragments, {} site(s)",
        batch.len(),
        batch.merged_len(),
        summed,
        forest.card(),
        placement.sites().len()
    );
    for (src, answer) in queries.iter().zip(&out.answers) {
        println!("{answer:<5}  {src}");
    }
    let sequential: f64 = compiled
        .iter()
        .map(|c| parbox(&cluster, c).report.network_cost_s(&model))
        .sum();
    let batched = out.report.network_cost_s(&model);
    let saving = if batched > 0.0 {
        format!("{:.1}x", sequential / batched)
    } else {
        "all fragments local, no network".into()
    };
    println!(
        "one round: max visits/site {}, {} messages, {} bytes; network cost {:.6}s vs {:.6}s sequential ({saving})",
        out.report.max_visits(),
        out.report.total_messages(),
        out.report.total_bytes(),
        batched,
        sequential,
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let [file] = positional(args)[..] else {
        return Err(
            "usage: parbox-cli serve <file.xml> [--fragments N] [--sites K] [--ops N] \
             [--seed S] [--batch N] [--fault-plan SPEC] [--deadline-ms N] [--no-delta]"
                .into(),
        );
    };
    let fragments: usize = flag(args, "--fragments")
        .map(|v| v.parse().unwrap_or(4))
        .unwrap_or(4);
    let sites: u32 = flag(args, "--sites")
        .map(|v| v.parse().unwrap_or(fragments as u32))
        .unwrap_or(fragments as u32);
    let ops: usize = flag(args, "--ops")
        .map(|v| v.parse().unwrap_or(1000))
        .unwrap_or(1000);
    let seed: u64 = flag(args, "--seed")
        .map(|v| v.parse().unwrap_or(2006))
        .unwrap_or(2006);
    let max_batch: usize = flag(args, "--batch")
        .map(|v| v.parse().unwrap_or(32))
        .unwrap_or(32);
    let fault_plan = match flag(args, "--fault-plan") {
        Some(spec) => FaultPlan::parse(&spec, seed, std::time::Duration::from_millis(75))
            .map_err(|e| format!("--fault-plan: {e}"))?,
        None => FaultPlan::none(),
    };
    let supervisor = flag(args, "--deadline-ms")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("--deadline-ms: bad value {v:?}"))
        })
        .transpose()?
        .map(|ms| SupervisorConfig {
            deadline: std::time::Duration::from_millis(ms),
            max_attempts: 4,
            restart_after_timeouts: 1,
            backoff_base: std::time::Duration::from_millis((ms / 4).max(1)),
            jitter_seed: seed,
        });

    let delta_maintenance = !args.iter().any(|a| a == "--no-delta");

    let tree = load_tree(file)?;
    let mut forest = Forest::from_tree(tree);
    strategies::fragment_evenly(&mut forest, fragments).map_err(|e| format!("fragmenting: {e}"))?;
    let placement = Placement::round_robin(&forest, sites.max(1));
    let chaotic = !fault_plan.is_inert();
    let config = EngineConfig {
        max_batch,
        fault_plan,
        supervisor,
        delta_maintenance,
        ..EngineConfig::default()
    };
    let mut engine =
        Engine::new(forest, placement, config).map_err(|e| format!("deploying: {e}"))?;
    println!(
        "deployed {} fragments over {} resident site worker(s); serving {ops} mixed ops \
         (seed {seed}, admission batch {max_batch})",
        engine.forest().card(),
        engine.placement().sites().len()
    );

    let stream = mixed_workload(MixedConfig::serving(ops, seed));
    let start = std::time::Instant::now();
    let served = drive_stream(&mut engine, &stream);
    let wall = start.elapsed().as_secs_f64();

    let stats = engine.stats();
    let trues = served.answers.iter().filter(|&&a| a).count();
    println!(
        "answered {} queries ({trues} true) and applied {} updates \
         in {wall:.3}s ({:.0} queries/s)",
        served.answers.len(),
        served.updates_applied,
        served.answers.len() as f64 / wall.max(1e-9)
    );
    println!(
        "rounds {}  coordinator cache hits {}  site cache hits {}  traffic {} bytes",
        stats.rounds, stats.members_from_cache, stats.site_cache_hits, served.bytes
    );
    let coord_rate = stats.members_from_cache as f64 / (stats.queries as f64).max(1.0);
    let site_rate = stats.site_cache_hits as f64
        / ((stats.site_cache_hits + stats.fragments_evaluated) as f64).max(1.0);
    let arena = parbox::boolean::Formula::arena_stats();
    println!(
        "cache efficacy: coordinator {:.1}%  site {:.1}%  |  formula arena: {} nodes, \
         {} thread-local hits, busiest shard {} interns",
        100.0 * coord_rate,
        100.0 * site_rate,
        arena.nodes,
        arena.local_hits,
        arena.shards.iter().map(|s| s.interns).max().unwrap_or(0)
    );
    if delta_maintenance {
        let total = (stats.entries_repaired + stats.entries_invalidated).max(1);
        println!(
            "update maintenance: {} entries repaired in place ({:.1}%), {} invalidated, \
             {} nodes re-interned, {} delta bytes shipped",
            stats.entries_repaired,
            100.0 * stats.entries_repaired as f64 / total as f64,
            stats.entries_invalidated,
            stats.repair_nodes_recomputed,
            stats.repair_delta_bytes
        );
    } else {
        println!(
            "update maintenance: delta repair disabled (--no-delta), {} entries invalidated",
            stats.entries_invalidated
        );
    }
    if chaotic {
        println!(
            "supervision: timeouts {}  retries {}  actor restarts {}  partial answers {}",
            stats.timeouts, stats.retries, stats.restarts, served.partial_answers
        );
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let bytes: usize = flag(args, "--bytes")
        .ok_or("usage: parbox-cli generate --bytes N [--seed S]")?
        .parse()
        .map_err(|e| format!("--bytes: {e}"))?;
    let seed: u64 = flag(args, "--seed")
        .map(|v| v.parse().unwrap_or(0))
        .unwrap_or(0);
    let tree = generate(XmarkConfig {
        target_bytes: bytes,
        seed,
    });
    println!("{}", tree.to_xml());
    Ok(())
}

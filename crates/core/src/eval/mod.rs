//! Evaluation kernels: the centralized baseline and the formula-valued
//! `bottomUp` procedure shared by all distributed algorithms.

pub mod bitset;
pub mod bottom_up;
pub mod centralized;
pub mod incremental;
pub mod reference;

pub use bitset::BitSet;
pub use bottom_up::{bottom_up, bottom_up_formula_only, FragmentRun};
pub use centralized::{centralized_eval, centralized_eval_counted, CentralizedRun};
pub use incremental::{IncrementalBottomUp, RepairRun};
pub use reference::{bottom_up_reference, RefFragmentRun};

//! Criterion bench for Experiment 2 (Figs. 9–11): the three ParBoX
//! variants on the FT2 chain with the query satisfied at the root, the
//! middle and the deepest fragment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parbox_bench::experiments::run_algorithm;
use parbox_bench::{ft2_chain, Scale};
use parbox_net::{Cluster, NetworkModel};
use parbox_query::{compile, parse_query};
use parbox_xmark::marker_query;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = Scale {
        corpus_bytes: 64 * 1024,
        seed: 2006,
    };
    let n = 8usize;
    let (forest, placement) = ft2_chain(scale, n);
    let mut group = c.benchmark_group("exp2");
    group.sample_size(10);
    for (target, idx) in [("qF0", 0usize), ("qFmid", n / 2), ("qFn", n - 1)] {
        let q = compile(&parse_query(&marker_query(&format!("F{idx}"))).unwrap());
        for algo in ["ParBoX", "FullDistParBoX", "LazyParBoX"] {
            group.bench_with_input(BenchmarkId::new(algo, target), &idx, |b, _| {
                b.iter(|| {
                    let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
                    black_box(run_algorithm(algo, &cluster, &q).answer)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

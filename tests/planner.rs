//! Cost-based planner: equivalence and estimate-accuracy properties.
//!
//! The ISSUE acceptance property: for every generated cluster / query /
//! network-model triple, the strategy the planner chooses returns an
//! answer identical to *all* fixed executors (and to the centralized
//! oracle); and the planner's `CostEstimate` matches the measured
//! `RunReport` — visit and message counts exactly for the
//! deterministic strategies, traffic within the documented factor.

use parbox::core::plan::TRAFFIC_ESTIMATE_FACTOR;
use parbox::core::{centralized_eval, plan_run, PlanContext, Planner};
use parbox::frag::{ForestStats, Placement};
use parbox::net::Cluster;
use parbox::query::compile;
use proptest::prelude::*;

mod common;
use common::{fragment_randomly, network_models, query_strategy, tree_strategy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Planner-chosen execution agrees with every fixed executor and
    /// the centralized oracle, under every network model.
    #[test]
    fn planned_answer_equals_all_fixed_executors(
        tree in tree_strategy(),
        query in query_strategy(),
        cuts in proptest::collection::vec(0usize..1000, 0..6),
        model_idx in 0usize..3,
    ) {
        let (model_name, model) = network_models()[model_idx];
        let expected = centralized_eval(&tree, &compile(&query));
        let forest = fragment_randomly(tree, &cuts);
        let placement = Placement::round_robin(&forest, 3);
        let cluster = Cluster::new(&forest, &placement, model);
        let stats = ForestStats::compute(&forest, &placement);
        let q = compile(&query);
        let cx = PlanContext::new(&cluster, &q, &stats);
        let planner = Planner::standard();
        let chosen = planner.choose(&cx).execute(&cluster, &q);
        prop_assert_eq!(
            chosen.answer, expected,
            "planned {} vs centralized on {} under {}",
            chosen.algorithm, &query, model_name
        );
        let planned = chosen.report.planned.as_ref().expect("summary recorded");
        prop_assert_eq!(planned.candidates, 6);
        prop_assert_eq!(planned.strategy.as_str(), chosen.algorithm);
        for exec in planner.executors() {
            prop_assert_eq!(
                exec.execute(&cluster, &q).answer, expected,
                "{} vs centralized on {} under {}", exec.name(), &query, model_name
            );
        }
    }

    /// Estimate-vs-measured agreement on arbitrary deterministic
    /// workloads: visits, messages and work units are predicted exactly
    /// for ParBoX, FullDistParBoX and both naive baselines; total
    /// traffic stays within the documented factor.
    #[test]
    fn estimates_match_measured_reports(
        tree in tree_strategy(),
        query in query_strategy(),
        cuts in proptest::collection::vec(0usize..1000, 0..6),
        model_idx in 0usize..3,
    ) {
        let (_, model) = network_models()[model_idx];
        let forest = fragment_randomly(tree, &cuts);
        let placement = Placement::round_robin(&forest, 3);
        let cluster = Cluster::new(&forest, &placement, model);
        let stats = ForestStats::compute(&forest, &placement);
        let q = compile(&query);
        let cx = PlanContext::new(&cluster, &q, &stats);
        for exec in Planner::standard().executors() {
            let deterministic = matches!(
                exec.name(),
                "ParBoX" | "NaiveCentralized" | "NaiveDistributed" | "FullDistParBoX"
            );
            if !deterministic {
                continue;
            }
            let est = exec.estimate(&cx);
            let out = exec.execute(&cluster, &q);
            prop_assert_eq!(est.visits, out.report.total_visits(), "{} visits", exec.name());
            prop_assert_eq!(est.messages, out.report.total_messages(), "{} messages", exec.name());
            prop_assert_eq!(est.work_units, out.report.total_work(), "{} work", exec.name());
            let measured = out.report.total_bytes();
            prop_assert!(
                est.traffic_bytes <= measured.max(1) * TRAFFIC_ESTIMATE_FACTOR
                    && measured <= est.traffic_bytes.max(1) * TRAFFIC_ESTIMATE_FACTOR,
                "{}: traffic {} vs measured {} on {}",
                exec.name(), est.traffic_bytes, measured, &query
            );
        }
    }
}

/// `plan_run` is the one-call adaptive path the CLI uses: it must agree
/// with the centralized answer and stamp the plan into the report.
#[test]
fn plan_run_smoke() {
    let tree = parbox::xml::Tree::parse(
        "<site><item><name>widget</name></item><person><name>ada</name></person></site>",
    )
    .unwrap();
    let expected = centralized_eval(
        &tree,
        &compile(&parbox::query::parse_query("[//item and //person]").unwrap()),
    );
    let forest = fragment_randomly(tree, &[3, 7]);
    let placement = Placement::round_robin(&forest, 2);
    for (_, model) in network_models() {
        let cluster = Cluster::new(&forest, &placement, model);
        let q = compile(&parbox::query::parse_query("[//item and //person]").unwrap());
        let out = plan_run(&cluster, &q);
        assert_eq!(out.answer, expected);
        assert!(out.report.planned.is_some());
    }
}

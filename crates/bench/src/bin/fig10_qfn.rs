//! Regenerates **Fig. 10**: query satisfied at the deepest fragment
//! (qFn) on the FT2 chain — ParBoX vs FullDistParBoX vs LazyParBoX.

use parbox_bench::experiments::{experiment2, Target};
use parbox_bench::{print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let rows = experiment2(scale, 10, Target::Deepest);
    print_table(
        &format!(
            "Fig. 10 — query qFn on the FT2 chain (corpus {} bytes)",
            scale.corpus_bytes
        ),
        "machines",
        &rows,
    );
}

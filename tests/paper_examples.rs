//! The paper's worked examples, encoded as tests: the Fig. 1(a)
//! introduction example, Example 2.1 (normalization and QList), the
//! Fig. 1(b)/Fig. 2 portfolio with Examples 3.1–3.3, and the Section 4
//! lazy-evaluation example.

use parbox::boolean::VecKind;
use parbox::core::{bottom_up, lazy_parbox, parbox};
use parbox::frag::{Forest, Placement, SiteId};
use parbox::net::{Cluster, NetworkModel};
use parbox::query::{compile, normalize, parse_query, NQuery, SubQuery};
use parbox::xml::{FragmentId, NodeId, Tree};

fn find(forest: &Forest, frag: FragmentId, label: &str) -> NodeId {
    let t = &forest.fragment(frag).tree;
    t.descendants(t.root())
        .find(|&n| t.label_str(n) == label)
        .unwrap_or_else(|| panic!("no {label} in {frag}"))
}

/// Section 1, Fig. 1(a): `Q = [//A ∧ //B]` over R{X{Z}, Y} where A-tagged
/// nodes occur only in Z and B-tagged nodes only in Y.
#[test]
fn intro_figure_1a() {
    let tree = Tree::parse("<r><x><z><A/><A/></z></x><y><B/></y></r>").unwrap();
    let mut forest = Forest::from_tree(tree);
    let f0 = forest.root_fragment();
    let x = find(&forest, f0, "x");
    let fx = forest.split(f0, x).unwrap();
    let z = find(&forest, fx, "z");
    let fz = forest.split(fx, z).unwrap();
    let y = find(&forest, f0, "y");
    let fy = forest.split(f0, y).unwrap();

    let placement = Placement::one_per_fragment(&forest);
    let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
    let q = compile(&parse_query("[//A ∧ //B]").unwrap());

    // The paper's hand-computed per-fragment results: (zA, zB) = (1, 0),
    // (yA, yB) = (0, 1).
    let rz = bottom_up(&forest.fragment(fz).tree, &q)
        .triplet
        .resolved()
        .unwrap();
    let ry = bottom_up(&forest.fragment(fy).tree, &q)
        .triplet
        .resolved()
        .unwrap();
    // Sub-query //A is the Desc op over label A; find it by shape.
    let desc_a = q
        .subs()
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, SubQuery::Desc(_)))
        .map(|(i, _)| i)
        .next()
        .unwrap();
    let desc_b = q
        .subs()
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, SubQuery::Desc(_)))
        .map(|(i, _)| i)
        .nth(1)
        .unwrap();
    assert!(rz.dv[desc_a] && !rz.dv[desc_b], "Z has A but not B");
    assert!(!ry.dv[desc_a] && ry.dv[desc_b], "Y has B but not A");

    // And the composed answer is true.
    let out = parbox(&cluster, &q);
    assert!(
        out.answer,
        "Q(R, X, Y, Z) = (rA∨xA∨yA∨zA) ∧ (rB∨xB∨yB∨zB) = 1"
    );

    // Removing the B leaf flips it.
    let mut forest2 = forest.clone();
    let b = find(&forest2, fy, "B");
    forest2.tree_mut(fy).remove_subtree(b).unwrap();
    let cluster2 = Cluster::new(&forest2, &placement, NetworkModel::lan());
    assert!(!parbox(&cluster2, &q).answer);
}

/// Example 2.1: normalization of `[//stock[code/text() = "yhoo"]]`.
#[test]
fn example_2_1_normal_form() {
    let q = parse_query("[//stock[code/text() = \"yhoo\"]]").unwrap();
    let n = normalize(&q);
    // ε[//ε[label() = stock ∧ */ε[label() = code ∧ text() = "yhoo"]]]
    let rendered = n.to_string();
    assert!(rendered.contains("label() = stock"), "{rendered}");
    assert!(rendered.contains("label() = code"), "{rendered}");
    assert!(rendered.contains("text() = \"yhoo\""), "{rendered}");
    // The outer structure is a path beginning with //.
    let NQuery::Path(steps) = &n else {
        panic!("expected path, got {n}")
    };
    assert!(matches!(steps[0], parbox::query::NStep::DescOrSelf));

    // QList is topologically ordered and O(|q|) in size (paper remark).
    let c = compile(&q);
    assert!(c.len() <= 2 * q.size());
    for (i, s) in c.subs().iter().enumerate() {
        for op in s.operands() {
            assert!((op as usize) < i);
        }
    }
}

/// Builds the paper's Fig. 1(b)/Fig. 2 portfolio with fragments F0–F3 and
/// sites S0–S2 (F2 and F3 both on S2).
fn fig2_portfolio() -> (Forest, Placement) {
    let tree = Tree::parse(
        r#"<portofolio>
             <broker><name>Bache</name>
               <market><title>NYSE</title>
                 <stock><code>IBM</code><buy>80</buy><sell>78</sell></stock>
                 <stock><code>HPQ</code><buy>30</buy><sell>33</sell></stock>
               </market>
             </broker>
             <brokerML><name>Merill Lynch</name>
               <marketN><name>NASDAQ</name>
                 <stock><code>GOOG</code><buy>374</buy><sell>373</sell></stock>
                 <stock><code>YHOO</code><buy>33</buy><sell>35</sell></stock>
               </marketN>
             </brokerML>
           </portofolio>"#,
    )
    .unwrap();
    let mut forest = Forest::from_tree(tree);
    let f0 = forest.root_fragment();
    let broker_ml = find(&forest, f0, "brokerML");
    let f1 = forest.split(f0, broker_ml).unwrap();
    let market_n = find(&forest, f1, "marketN");
    let f2 = forest.split(f1, market_n).unwrap();
    let market = find(&forest, f0, "market");
    let f3 = forest.split(f0, market).unwrap();

    let mut placement = Placement::new();
    placement.assign(f0, SiteId(0));
    placement.assign(f1, SiteId(1));
    placement.assign(f2, SiteId(2));
    placement.assign(f3, SiteId(2));
    (forest, placement)
}

/// Example 3.1/3.2: partial evaluation of F1 leaves a residual formula
/// over F2's variables only; leaf fragments are fully resolved.
#[test]
fn examples_3_1_and_3_2_triplets() {
    let (forest, _) = fig2_portfolio();
    let q = compile(&parse_query("[//stock[code/text() = \"YHOO\"]]").unwrap());

    // F1 contains Merill Lynch and the virtual node for F2.
    let f1 = FragmentId(1);
    let run = bottom_up(&forest.fragment(f1).tree, &q);
    assert!(!run.triplet.is_closed(), "F1 depends on F2");
    for f in run
        .triplet
        .v
        .iter()
        .chain(&run.triplet.cv)
        .chain(&run.triplet.dv)
    {
        for var in f.vars() {
            assert_eq!(var.frag, FragmentId(2), "only F2 variables may appear");
        }
    }

    // F2 and F3 are leaf fragments: closed triplets (paper: "the vectors
    // of leaf fragments contain no variables").
    for leaf in [FragmentId(2), FragmentId(3)] {
        let run = bottom_up(&forest.fragment(leaf).tree, &q);
        assert!(run.triplet.is_closed(), "{leaf} must be closed");
    }

    // F2 holds yhoo: its root-level DV for the whole query is true.
    let r2 = bottom_up(&forest.fragment(FragmentId(2)).tree, &q)
        .triplet
        .resolved()
        .unwrap();
    assert!(r2.dv[q.root() as usize]);
    // F3 does not.
    let r3 = bottom_up(&forest.fragment(FragmentId(3)).tree, &q)
        .triplet
        .resolved()
        .unwrap();
    assert!(!r3.dv[q.root() as usize]);
}

/// Example 3.3: the composed answer over the source tree is true, and
/// variables unify exactly as the worked example describes (dx8 → 1 via
/// F2, dz8 → 0 via F3).
#[test]
fn example_3_3_composition() {
    let (forest, placement) = fig2_portfolio();
    let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
    let q = compile(&parse_query("[//stock[code/text() = \"YHOO\"]]").unwrap());
    let out = parbox(&cluster, &q);
    assert!(out.answer, "q = dy8 ∨ dz8 = 1 ∨ 0 = 1");

    // The root fragment's residual answer must reference both F1 and F3.
    let f0 = forest.root_fragment();
    let run = bottom_up(&forest.fragment(f0).tree, &q);
    let answer_formula = &run.triplet.v[q.root() as usize];
    let frags: std::collections::BTreeSet<FragmentId> =
        answer_formula.vars().into_iter().map(|v| v.frag).collect();
    assert!(frags.contains(&FragmentId(1)), "formula {answer_formula}");
    assert!(frags.contains(&FragmentId(3)), "formula {answer_formula}");
    // …and only via descendant (DV) or root-value (V) variables.
    for var in answer_formula.vars() {
        assert!(matches!(var.vec, VecKind::DV | VecKind::V));
    }
}

/// The paper's stock-alert query: GOOG never reaches a sell price of 376
/// in the base data, but does after the trade is recorded.
#[test]
fn goog_alert_round_trip() {
    let (mut forest, placement) = fig2_portfolio();
    let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
    let q =
        compile(&parse_query("[//stock[code/text() = \"GOOG\" ∧ sell/text() = \"376\"]]").unwrap());
    assert!(!parbox(&cluster, &q).answer);
    drop(cluster);

    // Record the trade in F2 (the NASDAQ fragment).
    let f2 = FragmentId(2);
    let goog_stock = {
        let t = &forest.fragment(f2).tree;
        t.descendants(t.root())
            .find(|&n| {
                t.label_str(n) == "stock"
                    && t.children(n)
                        .any(|c| t.node(c).text.as_deref() == Some("GOOG"))
            })
            .unwrap()
    };
    let sell = {
        let t = &forest.fragment(f2).tree;
        t.children(goog_stock)
            .find(|&c| t.label_str(c) == "sell")
            .unwrap()
    };
    forest.tree_mut(f2).set_text(sell, "376");
    let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
    assert!(parbox(&cluster, &q).answer);
}

/// Section 4's lazy example: `[/portofolio/broker/name = "Merill Lynch"]`
/// — wait, Bache is in F0; the Merill Lynch broker subtree is F1. A query
/// about Bache is answerable from F0 alone; LazyParBoX must not evaluate
/// the NASDAQ fragments F2/F3.
#[test]
fn section_4_lazy_skips_remote_market() {
    let (forest, placement) = fig2_portfolio();
    let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
    let q = compile(&parse_query("[/portofolio/broker/name = \"Bache\"]").unwrap());
    let out = lazy_parbox(&cluster, &q);
    assert!(out.answer);
    // S2 (holding F2 and F3 at depth 2) must never be visited.
    assert_eq!(
        out.report.site(SiteId(2)).visits,
        0,
        "deep market evaluated needlessly"
    );
    let eager = parbox(&cluster, &q);
    assert!(out.report.total_work() < eager.report.total_work());
}

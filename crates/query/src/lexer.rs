//! Tokenizer for the XBL concrete syntax.

use std::fmt;

/// A lexical token with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind/payload.
    pub kind: TokenKind,
    /// Byte offset in the input.
    pub at: usize,
}

/// Token kinds of the XBL surface syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `*`
    Star,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `and` / `&&` / `∧`
    And,
    /// `or` / `||` / `∨`
    Or,
    /// `not` / `!` / `¬`
    Not,
    /// `text()` — recognized as one token.
    TextFn,
    /// `label()` — recognized as one token.
    LabelFn,
    /// An element name.
    Name(String),
    /// A quoted string literal (quotes removed).
    Str(String),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::LBracket => write!(f, "'['"),
            TokenKind::RBracket => write!(f, "']'"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::Slash => write!(f, "'/'"),
            TokenKind::DoubleSlash => write!(f, "'//'"),
            TokenKind::Star => write!(f, "'*'"),
            TokenKind::Dot => write!(f, "'.'"),
            TokenKind::Eq => write!(f, "'='"),
            TokenKind::And => write!(f, "'and'"),
            TokenKind::Or => write!(f, "'or'"),
            TokenKind::Not => write!(f, "'not'"),
            TokenKind::TextFn => write!(f, "'text()'"),
            TokenKind::LabelFn => write!(f, "'label()'"),
            TokenKind::Name(n) => write!(f, "name '{n}'"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Lexer error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset.
    pub at: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes the whole input.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'[' => {
                tokens.push(Token {
                    kind: TokenKind::LBracket,
                    at: i,
                });
                i += 1;
            }
            b']' => {
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    at: i,
                });
                i += 1;
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    at: i,
                });
                i += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    at: i,
                });
                i += 1;
            }
            b'*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    at: i,
                });
                i += 1;
            }
            b'.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    at: i,
                });
                i += 1;
            }
            b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    at: i,
                });
                i += 1;
            }
            b'!' => {
                tokens.push(Token {
                    kind: TokenKind::Not,
                    at: i,
                });
                i += 1;
            }
            b'/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    tokens.push(Token {
                        kind: TokenKind::DoubleSlash,
                        at: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Slash,
                        at: i,
                    });
                    i += 1;
                }
            }
            b'&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token {
                        kind: TokenKind::And,
                        at: i,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected '&&'".into(),
                        at: i,
                    });
                }
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token {
                        kind: TokenKind::Or,
                        at: i,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected '||'".into(),
                        at: i,
                    });
                }
            }
            b'"' | b'\'' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        at: i,
                    });
                }
                let s = std::str::from_utf8(&bytes[start..j]).map_err(|_| LexError {
                    message: "invalid UTF-8 in string".into(),
                    at: i,
                })?;
                tokens.push(Token {
                    kind: TokenKind::Str(s.to_string()),
                    at: i,
                });
                i = j + 1;
            }
            _ if !c.is_ascii() => {
                // Unicode operators ∧ ∨ ¬, or a Unicode name.
                let rest = &input[i..];
                let ch = rest.chars().next().expect("non-empty");
                match ch {
                    '∧' => {
                        tokens.push(Token {
                            kind: TokenKind::And,
                            at: i,
                        });
                        i += ch.len_utf8();
                    }
                    '∨' => {
                        tokens.push(Token {
                            kind: TokenKind::Or,
                            at: i,
                        });
                        i += ch.len_utf8();
                    }
                    '¬' => {
                        tokens.push(Token {
                            kind: TokenKind::Not,
                            at: i,
                        });
                        i += ch.len_utf8();
                    }
                    _ if ch.is_alphabetic() => {
                        let len = name_len(rest);
                        tokens.push(Token {
                            kind: TokenKind::Name(rest[..len].to_string()),
                            at: i,
                        });
                        i += len;
                    }
                    _ => {
                        return Err(LexError {
                            message: format!("unexpected character {ch:?}"),
                            at: i,
                        })
                    }
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let len = name_len(&input[i..]);
                i += len;
                let word = &input[start..i];
                let kind = match word {
                    "and" => TokenKind::And,
                    "or" => TokenKind::Or,
                    "not" => TokenKind::Not,
                    "text" | "label" if lookahead_parens(bytes, i) => {
                        i += 2;
                        if word == "text" {
                            TokenKind::TextFn
                        } else {
                            TokenKind::LabelFn
                        }
                    }
                    _ => TokenKind::Name(word.to_string()),
                };
                tokens.push(Token { kind, at: start });
            }
            _ => {
                return Err(LexError {
                    message: format!("unexpected character {:?}", c as char),
                    at: i,
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        at: bytes.len(),
    });
    Ok(tokens)
}

/// Byte length of the name prefix of `s` (alphanumerics, `_`, `-` and
/// non-operator Unicode letters).
fn name_len(s: &str) -> usize {
    let mut len = 0;
    for ch in s.chars() {
        let is_name = ch.is_ascii_alphanumeric()
            || ch == '_'
            || ch == '-'
            || ch == ':'
            || (!ch.is_ascii() && !matches!(ch, '∧' | '∨' | '¬') && ch.is_alphabetic());
        if is_name {
            len += ch.len_utf8();
        } else {
            break;
        }
    }
    len
}

/// True when the bytes at `i` are exactly `()`.
fn lookahead_parens(bytes: &[u8], i: usize) -> bool {
    bytes.get(i) == Some(&b'(') && bytes.get(i + 1) == Some(&b')')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_structural_tokens() {
        assert_eq!(
            kinds("[//a/*]"),
            vec![
                TokenKind::LBracket,
                TokenKind::DoubleSlash,
                TokenKind::Name("a".into()),
                TokenKind::Slash,
                TokenKind::Star,
                TokenKind::RBracket,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_functions_and_strings() {
        assert_eq!(
            kinds("text() = \"GOOG\""),
            vec![
                TokenKind::TextFn,
                TokenKind::Eq,
                TokenKind::Str("GOOG".into()),
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("label() = stock"),
            vec![
                TokenKind::LabelFn,
                TokenKind::Eq,
                TokenKind::Name("stock".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn name_text_without_parens_is_a_name() {
        assert_eq!(
            kinds("text"),
            vec![TokenKind::Name("text".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn lexes_boolean_operators_ascii_and_unicode() {
        assert_eq!(
            kinds("a and b or not c"),
            vec![
                TokenKind::Name("a".into()),
                TokenKind::And,
                TokenKind::Name("b".into()),
                TokenKind::Or,
                TokenKind::Not,
                TokenKind::Name("c".into()),
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("a ∧ b ∨ ¬c && d || !e"),
            vec![
                TokenKind::Name("a".into()),
                TokenKind::And,
                TokenKind::Name("b".into()),
                TokenKind::Or,
                TokenKind::Not,
                TokenKind::Name("c".into()),
                TokenKind::And,
                TokenKind::Name("d".into()),
                TokenKind::Or,
                TokenKind::Not,
                TokenKind::Name("e".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn single_quotes_work() {
        assert_eq!(
            kinds("'x y'"),
            vec![TokenKind::Str("x y".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn errors_carry_position() {
        let err = tokenize("a % b").unwrap_err();
        assert_eq!(err.at, 2);
        let err = tokenize("\"unterminated").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn hyphenated_names() {
        assert_eq!(
            kinds("open-auction"),
            vec![TokenKind::Name("open-auction".into()), TokenKind::Eof]
        );
    }
}
